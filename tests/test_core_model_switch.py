"""Tests for the model-switch detector (Alg. 1 lines 16–24)."""

import numpy as np
import pytest

from repro.core.model_switch import ModelSwitchDetector


def test_untrained_high_fidelity_never_switches():
    detector = ModelSwitchDetector()
    values = np.array([1.0, 2.0, 3.0])
    decision = detector.evaluate(values, None, values, None, values)
    assert not decision.switch
    assert decision.s_high == float("-inf")
    assert not detector.switched


def test_switches_when_high_fidelity_wins():
    detector = ModelSwitchDetector()
    values = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    good = values.copy()  # perfect ranking
    bad = -values  # inverted
    decision = detector.evaluate(bad, good, values, good, values)
    assert decision.switch
    assert decision.s_high > decision.s_low
    assert detector.switched


def test_no_switch_on_zero_recall_tie():
    """Both models scoring zero recall must not trigger the switch."""
    detector = ModelSwitchDetector()
    values = np.arange(1.0, 9.0)
    inverted = -values
    decision = detector.evaluate(inverted, inverted, values, inverted, values)
    assert decision.s_high == decision.s_low == 0.0
    assert not decision.switch


def test_low_fidelity_retains_when_better():
    detector = ModelSwitchDetector()
    values = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    perfect = values.copy()
    noisy = values[::-1].copy()
    decision = detector.evaluate(perfect, noisy, values, noisy, values)
    assert not decision.switch


def test_detector_single_use():
    detector = ModelSwitchDetector()
    values = np.array([1.0, 2.0, 3.0])
    detector.evaluate(values, values, values, values, values)
    assert detector.switched
    with pytest.raises(RuntimeError):
        detector.evaluate(values, values, values, values, values)


class TestBiasGuard:
    def test_biased_model_triggers_injection(self):
        detector = ModelSwitchDetector()
        batch_values = np.arange(1.0, 7.0)
        # High-fidelity loves the measured *worst* configurations.
        all_values = np.arange(1.0, 13.0)
        all_high = -all_values  # rates worst as best
        decision = detector.evaluate(
            batch_values, -batch_values, batch_values, all_high, all_values
        )
        assert decision.inject_random

    def test_aligned_model_no_injection(self):
        detector = ModelSwitchDetector()
        batch_values = np.arange(1.0, 7.0)
        all_values = np.arange(1.0, 13.0)
        decision = detector.evaluate(
            batch_values, batch_values, batch_values, all_values, all_values
        )
        assert not decision.inject_random

    def test_small_samples_skip_guard(self):
        detector = ModelSwitchDetector()
        values = np.array([1.0, 2.0, 3.0])
        decision = detector.evaluate(values, -values, values, -values, values)
        assert not decision.inject_random  # fewer than 6 measured
