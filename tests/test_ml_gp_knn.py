"""Tests for the Gaussian process and k-NN regressors."""

import numpy as np
import pytest

from repro.ml.gaussian_process import GaussianProcessRegressor
from repro.ml.neighbors import KNeighborsRegressor


@pytest.fixture()
def data():
    rng = np.random.default_rng(5)
    X = rng.uniform(0, 5, size=(80, 3))
    y = np.exp(0.4 * X[:, 0] + np.sin(X[:, 1])) + 0.5
    return X, y


class TestGaussianProcess:
    def test_interpolates_training_points(self, data):
        X, y = data
        gp = GaussianProcessRegressor(noise=1e-4).fit(X[:30], y[:30])
        pred = gp.predict(X[:30])
        assert np.median(np.abs(pred - y[:30]) / y[:30]) < 0.05

    def test_generalizes(self, data):
        X, y = data
        gp = GaussianProcessRegressor().fit(X[:60], y[:60])
        pred = gp.predict(X[60:])
        assert np.median(np.abs(pred - y[60:]) / y[60:]) < 0.2

    def test_std_positive_and_grows_off_data(self, data):
        X, y = data
        gp = GaussianProcessRegressor().fit(X[:40], y[:40])
        _, std_near = gp.predict(X[:5], return_std=True)
        far = X[:5] + 50.0
        _, std_far = gp.predict(far, return_std=True)
        assert (std_near > 0).all()
        assert std_far.mean() > std_near.mean()

    def test_latent_space_consistency(self, data):
        X, y = data
        gp = GaussianProcessRegressor(log_target=True).fit(X[:40], y[:40])
        mean, std = gp.predict_latent(X[40:45])
        assert mean.shape == (5,) and (std > 0).all()
        np.testing.assert_allclose(gp.to_latent(y[:3]), np.log(y[:3]))

    def test_log_target_requires_positive(self):
        X = np.ones((5, 2))
        with pytest.raises(ValueError):
            GaussianProcessRegressor(log_target=True).fit(X, np.array([1., 2., -1., 4., 5.]))

    def test_without_log_target(self, data):
        X, y = data
        gp = GaussianProcessRegressor(log_target=False).fit(X[:40], y[:40])
        mean, std = gp.predict(X[40:45], return_std=True)
        assert mean.shape == std.shape == (5,)

    def test_fixed_hyperparameters(self, data):
        X, y = data
        gp = GaussianProcessRegressor(length_scale=1.0, noise=1e-2).fit(
            X[:30], y[:30]
        )
        assert gp._ls == 1.0 and gp._nv == 1e-2

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor(kernel="laplace")
        with pytest.raises(ValueError):
            GaussianProcessRegressor(noise=-1.0)
        gp = GaussianProcessRegressor()
        with pytest.raises(ValueError):
            gp.fit(np.ones((1, 2)), np.ones(1))
        with pytest.raises(RuntimeError):
            gp.predict(np.ones((1, 2)))

    def test_rbf_kernel_works(self, data):
        X, y = data
        gp = GaussianProcessRegressor(kernel="rbf").fit(X[:40], y[:40])
        assert gp.predict(X[40:42]).shape == (2,)


class TestKNeighbors:
    def test_exact_on_training_points(self, data):
        X, y = data
        knn = KNeighborsRegressor(k=3, weights="distance").fit(X, y)
        pred = knn.predict(X[:10])
        np.testing.assert_allclose(pred, y[:10], rtol=1e-6)

    def test_uniform_weights_average(self):
        X = np.array([[0.0], [1.0], [10.0]])
        y = np.array([1.0, 3.0, 100.0])
        knn = KNeighborsRegressor(k=2, weights="uniform").fit(X, y)
        # Query at 0.5: neighbours {0, 1} -> mean 2.0
        assert knn.predict(np.array([[0.5]]))[0] == pytest.approx(2.0)

    def test_kneighbors_sorted_by_distance(self, data):
        X, y = data
        knn = KNeighborsRegressor(k=4).fit(X, y)
        dists, _ = knn.kneighbors(X[:6])
        assert (np.diff(dists, axis=1) >= -1e-12).all()

    def test_k_capped_by_data(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([1.0, 2.0])
        knn = KNeighborsRegressor(k=10).fit(X, y)
        assert knn.predict(np.array([[0.5]])).shape == (1,)

    def test_validation(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(k=0)
        with pytest.raises(ValueError):
            KNeighborsRegressor(weights="cosine")
        knn = KNeighborsRegressor()
        with pytest.raises(RuntimeError):
            knn.predict(np.ones((1, 2)))
        with pytest.raises(ValueError):
            knn.fit(np.empty((0, 2)), np.empty(0))
