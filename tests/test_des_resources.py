"""Unit tests for DES stores and resources (blocking semantics)."""

import pytest

from repro.des import Environment, Resource, Store


class TestStore:
    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        received = []

        def producer():
            for i in range(3):
                yield store.put(i)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        env.process(producer())
        c = env.process(consumer())
        env.run(c)
        assert received == [0, 1, 2]

    def test_put_blocks_when_full(self):
        env = Environment()
        store = Store(env, capacity=1)
        timeline = []

        def producer():
            yield store.put("a")
            timeline.append(("a in", env.now))
            yield store.put("b")  # blocks until consumer frees a slot
            timeline.append(("b in", env.now))

        def consumer():
            yield env.timeout(5.0)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert timeline[0] == ("a in", 0.0)
        assert timeline[1][1] == 5.0  # b entered only after the get

    def test_get_blocks_when_empty(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, env.now))

        def producer():
            yield env.timeout(3.0)
            yield store.put("x")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [("x", 3.0)]

    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_nan_capacity_rejected(self):
        # ``capacity < 1`` alone lets NaN through; a NaN capacity makes
        # ``is_full`` permanently False — an unbounded buffer in disguise.
        env = Environment()
        with pytest.raises(ValueError):
            Store(env, capacity=float("nan"))

    def test_backpressure_fifo_at_one_instant(self):
        """Queued puts drain in FIFO order when gets free slots at once."""
        env = Environment()
        store = Store(env, capacity=1)
        entered = []

        def producer(tag):
            put = store.put(tag)
            put.callbacks.append(lambda ev, t=tag: entered.append((t, env.now)))
            yield put

        for tag in "abc":
            env.process(producer(tag))

        received = []

        def consumer():
            yield env.timeout(1.0)
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        c = env.process(consumer())
        env.run(c)
        assert received == ["a", "b", "c"]
        # "a" fit immediately; "b" and "c" entered at the drain instant.
        assert entered == [("a", 0.0), ("b", 1.0), ("c", 1.0)]

    def test_len_and_is_full(self):
        env = Environment()
        store = Store(env, capacity=2)
        store.put(1)
        store.put(2)
        env.run()
        assert len(store) == 2 and store.is_full

    def test_throughput_bounded_by_consumer(self):
        """With a bounded buffer the pipeline runs at the slow stage's rate."""
        env = Environment()
        store = Store(env, capacity=2)
        n = 10

        def producer():
            for i in range(n):
                yield env.timeout(1.0)  # fast stage
                yield store.put(i)

        def consumer():
            for _ in range(n):
                yield store.get()
                yield env.timeout(3.0)  # slow stage

        env.process(producer())
        c = env.process(consumer())
        env.run(c)
        # Steady state = n * slow rate, plus initial fill.
        assert env.now == pytest.approx(1.0 + 3.0 * n)


class TestResource:
    def test_grants_up_to_capacity(self):
        env = Environment()
        res = Resource(env, capacity=2)
        granted = []

        def worker(tag):
            yield res.request()
            granted.append((tag, env.now))
            yield env.timeout(2.0)
            res.release()

        for tag in "abc":
            env.process(worker(tag))
        env.run()
        by_tag = dict(granted)
        assert by_tag["a"] == 0.0 and by_tag["b"] == 0.0
        assert by_tag["c"] == 2.0  # queued behind the first two

    def test_release_without_request_rejected(self):
        env = Environment()
        res = Resource(env)
        with pytest.raises(RuntimeError):
            res.release()

    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_nan_capacity_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=float("nan"))

    def test_release_underflow_after_cycle(self):
        """A second release after a valid request/release pair is rejected."""
        env = Environment()
        res = Resource(env, capacity=1)
        res.request()
        env.run()
        res.release()
        with pytest.raises(RuntimeError):
            res.release()

    def test_available_accounting(self):
        env = Environment()
        res = Resource(env, capacity=3)
        res.request()
        env.run()
        assert res.available == 2
