"""Unit tests for the component application performance models."""

import pytest

from repro.apps import (
    GPlot,
    GrayScott,
    HeatTransfer,
    Lammps,
    PPlot,
    PdfCalculator,
    StageWrite,
    VoroPlusPlus,
)
from repro.apps.base import AppModelError, StepProfile
from repro.cluster.machine import Machine

MACHINE = Machine()


def profile(app, config, input_bytes=0.0):
    return app.step_profile(MACHINE, config, input_bytes)


class TestParameterSpaces:
    """Table 1 fidelity."""

    def test_lammps_space(self):
        space = Lammps().space
        assert space.names == ("procs", "ppn", "threads")
        assert space["procs"].values[0] == 2 and space["procs"].values[-1] == 1085
        assert space["ppn"].n_options == 35
        assert space["threads"].values == (1, 2, 3, 4)

    def test_heat_space(self):
        space = HeatTransfer().space
        assert space.names == ("px", "py", "ppn", "outputs", "buffer_mb")
        assert space["px"].values[0] == 2 and space["px"].values[-1] == 32
        assert space["outputs"].values == (4, 8, 16, 32)
        assert space["buffer_mb"].n_options == 40

    def test_stage_write_space(self):
        space = StageWrite().space
        assert space.names == ("procs", "ppn")

    def test_pdf_space_allows_single_proc(self):
        space = PdfCalculator().space
        assert space["procs"].values[0] == 1
        assert space["procs"].values[-1] == 512

    def test_plotters_are_unconfigurable(self):
        assert GPlot().space.size() == 1
        assert PPlot().space.size() == 1


class TestScalingBehaviour:
    def test_lammps_strong_scaling_then_saturation(self):
        app = Lammps()
        t_small = profile(app, (8, 8, 1)).compute_seconds
        t_mid = profile(app, (256, 32, 1)).compute_seconds
        assert t_mid < t_small / 4  # strong scaling region

    def test_lammps_threads_help_sublinearly(self):
        app = Lammps()
        t1 = profile(app, (64, 8, 1)).compute_seconds
        t4 = profile(app, (64, 8, 4)).compute_seconds
        assert t4 < t1
        assert t4 > t1 / 4  # not perfectly

    def test_voro_threads_nearly_useless(self):
        app = VoroPlusPlus()
        t1 = profile(app, (64, 8, 1)).compute_seconds
        t4 = profile(app, (64, 8, 4)).compute_seconds
        assert t4 > 0.6 * t1  # low thread efficiency

    def test_voro_work_scales_with_input(self):
        app = VoroPlusPlus()
        small = profile(app, (64, 8, 1), input_bytes=app.nominal_input_bytes)
        big = profile(app, (64, 8, 1), input_bytes=4 * app.nominal_input_bytes)
        assert big.compute_seconds > 2 * small.compute_seconds

    def test_heat_square_decomposition_beats_sliver(self):
        app = HeatTransfer()
        square = profile(app, (16, 16, 16, 4, 20)).compute_seconds
        sliver = profile(app, (32, 8, 16, 4, 20)).compute_seconds
        assert square < sliver

    def test_heat_dense_packing_hits_memory_wall(self):
        app = HeatTransfer()
        sparse = profile(app, (16, 16, 9, 4, 20)).compute_seconds
        dense = profile(app, (16, 16, 32, 4, 20)).compute_seconds
        assert dense > sparse  # same procs, denser nodes

    def test_heat_outputs_split_work(self):
        app = HeatTransfer()
        few = profile(app, (16, 16, 16, 4, 20))
        many = profile(app, (16, 16, 16, 32, 20))
        # per-step work shrinks with more outputs (total constant)
        assert many.compute_seconds < few.compute_seconds
        assert many.output_bytes == few.output_bytes

    def test_heat_small_buffer_pays_drains(self):
        app = HeatTransfer()
        big = profile(app, (4, 4, 16, 4, 40)).compute_seconds
        small = profile(app, (4, 4, 16, 4, 1)).compute_seconds
        assert small > big

    def test_stage_write_saturates_with_writers(self):
        app = StageWrite()
        few = app.aggregate_write_gbps(MACHINE, (4, 4))
        mid = app.aggregate_write_gbps(MACHINE, (64, 32))
        assert mid > few
        lots = app.aggregate_write_gbps(MACHINE, (1024, 35))
        assert lots < mid * 1.5  # saturation / crowding

    def test_stage_write_time_tracks_input(self):
        app = StageWrite()
        small = profile(app, (32, 16), input_bytes=1e8)
        large = profile(app, (32, 16), input_bytes=1e9)
        assert large.compute_seconds > small.compute_seconds
        assert large.write_bytes == 1e9

    def test_gray_scott_output_is_field(self):
        app = GrayScott()
        assert profile(app, (64, 16)).output_bytes == app.field_bytes

    def test_pdf_work_scales_with_input(self):
        app = PdfCalculator()
        small = profile(app, (16, 8), input_bytes=1e8)
        large = profile(app, (16, 8), input_bytes=1e9)
        assert large.compute_seconds > small.compute_seconds

    def test_pdf_output_small(self):
        app = PdfCalculator()
        assert profile(app, (16, 8)).output_bytes < 1e6

    def test_gplot_dominates_pplot(self):
        g = profile(GPlot(), (1,), input_bytes=GPlot().nominal_input_bytes)
        p = profile(PPlot(), (1,), input_bytes=PPlot().nominal_input_bytes)
        assert g.compute_seconds > 10 * p.compute_seconds


class TestSoloRuns:
    def test_solo_run_positive_and_consistent(self):
        app = Lammps()
        solo = app.solo_run(MACHINE, (64, 16, 1), n_steps=10)
        assert solo.execution_seconds > 0
        assert solo.nodes == 4
        expected_ch = MACHINE.core_hours(solo.execution_seconds, 4)
        assert solo.computer_core_hours == pytest.approx(expected_ch)

    def test_solo_run_scales_with_steps(self):
        app = GrayScott()
        short = app.solo_run(MACHINE, (64, 16), n_steps=5)
        long = app.solo_run(MACHINE, (64, 16), n_steps=20)
        assert long.execution_seconds > short.execution_seconds

    def test_solo_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            Lammps().solo_run(MACHINE, (64, 16, 1), n_steps=0)

    def test_validate_config(self):
        app = Lammps()
        app.validate_config(MACHINE, (64, 16, 1))
        with pytest.raises(AppModelError):
            app.validate_config(MACHINE, (0, 16, 1))
        with pytest.raises(ValueError):
            # 35 ppn x 4 threads = 140 > 36 cores
            app.validate_config(MACHINE, (70, 35, 4))

    def test_startup_grows_with_scale(self):
        app = Lammps()
        small = app.startup_seconds(MACHINE, (4, 4, 1))
        large = app.startup_seconds(MACHINE, (1024, 32, 1))
        assert large > small


class TestStepProfile:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            StepProfile(compute_seconds=-1.0)
        with pytest.raises(ValueError):
            StepProfile(compute_seconds=1.0, output_bytes=-5)
