"""Tests for the budgeted collector."""

import numpy as np
import pytest

from repro.core.collector import BudgetExhausted, Collector
from repro.core.objectives import COMPUTER_TIME, EXECUTION_TIME


@pytest.fixture()
def collector(lv_pool, lv_histories):
    return Collector(
        pool=lv_pool,
        objective=EXECUTION_TIME,
        histories=lv_histories,
        budget_runs=10,
    )


class TestWorkflowRuns:
    def test_measure_returns_objective_values(self, collector, lv_pool):
        configs = lv_pool.configs[:3]
        result = collector.measure(configs)
        for config in configs:
            assert result[config] == lv_pool.lookup(config).execution_seconds
        assert collector.runs_used == 3

    def test_budget_enforced(self, collector, lv_pool):
        collector.measure(lv_pool.configs[:10])
        with pytest.raises(BudgetExhausted):
            collector.measure(lv_pool.configs[10:11])

    def test_remeasure_rejected(self, collector, lv_pool):
        collector.measure(lv_pool.configs[:1])
        with pytest.raises(ValueError, match="already measured"):
            collector.measure(lv_pool.configs[:1])

    def test_cost_accumulates_both_units(self, collector, lv_pool):
        configs = lv_pool.configs[:2]
        collector.measure(configs)
        expected_exec = sum(lv_pool.lookup(c).execution_seconds for c in configs)
        expected_ch = sum(lv_pool.lookup(c).computer_core_hours for c in configs)
        assert collector.cost_execution_seconds == pytest.approx(expected_exec)
        assert collector.cost_core_hours == pytest.approx(expected_ch)
        assert collector.cost(EXECUTION_TIME) == collector.cost_execution_seconds
        assert collector.cost(COMPUTER_TIME) == collector.cost_core_hours

    def test_measurement_of_requires_measured(self, collector, lv_pool):
        with pytest.raises(KeyError):
            collector.measurement_of(lv_pool.configs[0])
        collector.measure(lv_pool.configs[:1])
        m = collector.measurement_of(lv_pool.configs[0])
        assert m.config == lv_pool.configs[0]


class TestComponentRuns:
    def test_batches_charged_as_runs(self, collector):
        rng = np.random.default_rng(0)
        data = collector.measure_components(4, rng)
        assert collector.runs_used == 4
        assert set(data) == {"lammps", "voro"}
        for batch in data.values():
            assert len(batch.configs) == 4

    def test_component_cost_counted(self, collector):
        rng = np.random.default_rng(0)
        data = collector.measure_components(3, rng)
        expected = sum(b.execution_seconds.sum() for b in data.values())
        assert collector.cost_execution_seconds == pytest.approx(expected)

    def test_zero_batches_free(self, collector):
        rng = np.random.default_rng(0)
        assert collector.measure_components(0, rng) == {}
        assert collector.runs_used == 0

    def test_too_many_batches_rejected(self, collector):
        rng = np.random.default_rng(0)
        with pytest.raises(BudgetExhausted):
            collector.measure_components(11, rng)

    def test_free_history_uncharged(self, collector):
        data = collector.free_component_history()
        assert collector.runs_used == 0
        assert len(data["lammps"].configs) == 120

    def test_no_histories_raises(self, lv_pool):
        collector = Collector(pool=lv_pool, objective=EXECUTION_TIME)
        with pytest.raises(RuntimeError, match="histories"):
            collector.measure_components(2, np.random.default_rng(0))


class TestFaultInjection:
    def test_failures_charge_but_yield_nothing(self, lv_pool, lv_histories):
        collector = Collector(
            pool=lv_pool,
            objective=EXECUTION_TIME,
            histories=lv_histories,
            budget_runs=100,
            failure_rate=0.5,
            failure_seed=1,
        )
        result = collector.measure(lv_pool.configs[:60])
        assert collector.runs_used == 60
        assert collector.failures > 5
        assert len(result) == 60 - collector.failures
        assert collector.cost_execution_seconds > 0

    def test_invalid_rate(self, lv_pool):
        with pytest.raises(ValueError):
            Collector(pool=lv_pool, objective=EXECUTION_TIME, failure_rate=1.5)
