"""Tests for the Didona ensembles (§8.2) and the BO tuner (§9)."""

import numpy as np
import pytest

from repro.core.algorithms import BayesianOptimization
from repro.core.collector import ComponentBatchData
from repro.core.component_models import ComponentModelSet
from repro.core.ensembles import HyBoost, KnnModelSelector, Probing
from repro.core.low_fidelity import LowFidelityModel
from repro.core.objectives import EXECUTION_TIME
from repro.core.problem import TuningProblem
from repro.core.surrogate import default_surrogate


@pytest.fixture(scope="module")
def low_fidelity(lv, lv_histories):
    data = {
        label: ComponentBatchData(
            label, h.configs, h.execution_seconds, h.computer_core_hours
        )
        for label, h in lv_histories.items()
    }
    return LowFidelityModel(
        ComponentModelSet.train(lv, EXECUTION_TIME, data, random_state=0)
    )


@pytest.fixture()
def train(lv_pool):
    configs = list(lv_pool.configs[:60])
    values = lv_pool.objective_values("execution_time")[:60]
    return configs, values


class TestKnnModelSelector:
    def test_fit_predict(self, lv, lv_pool, low_fidelity, train):
        configs, values = train
        ens = KnnModelSelector(
            low_fidelity, default_surrogate(lv.encoder(), 0), lv.encoder()
        )
        ens.fit(configs, values)
        pred = ens.predict(list(lv_pool.configs[60:80]))
        assert pred.shape == (20,)
        assert (pred > 0).all()

    def test_reasonable_accuracy(self, lv, lv_pool, low_fidelity, train):
        configs, values = train
        ens = KnnModelSelector(
            low_fidelity, default_surrogate(lv.encoder(), 0), lv.encoder()
        ).fit(configs, values)
        test = list(lv_pool.configs[60:])
        truth = lv_pool.objective_values("execution_time")[60:]
        rel = np.abs(ens.predict(test) - truth) / truth
        assert np.median(rel) < 0.5

    def test_too_few_samples(self, lv, low_fidelity):
        ens = KnnModelSelector(
            low_fidelity, default_surrogate(lv.encoder(), 0), lv.encoder()
        )
        with pytest.raises(ValueError):
            ens.fit([(2, 1, 1, 2, 1, 1)], np.array([1.0]))

    def test_unfitted_predict(self, lv, low_fidelity):
        ens = KnnModelSelector(
            low_fidelity, default_surrogate(lv.encoder(), 0), lv.encoder()
        )
        with pytest.raises(RuntimeError):
            ens.predict([(2, 1, 1, 2, 1, 1)])


class TestHyBoost:
    def test_corrects_analytical_bias(self, lv, lv_pool, low_fidelity, train):
        configs, values = train
        ens = HyBoost(low_fidelity, default_surrogate(lv.encoder(), 0))
        ens.fit(configs, values)
        pred = ens.predict(configs)
        rel = np.abs(pred - values) / values
        am_rel = np.abs(low_fidelity.predict(configs) - values) / values
        # On training data the corrected model beats the raw AM.
        assert np.median(rel) <= np.median(am_rel) + 1e-9

    def test_empty_predict(self, lv, low_fidelity, train):
        configs, values = train
        ens = HyBoost(low_fidelity, default_surrogate(lv.encoder(), 0))
        ens.fit(configs, values)
        assert ens.predict([]).shape == (0,)

    def test_unfitted(self, lv, low_fidelity):
        ens = HyBoost(low_fidelity, default_surrogate(lv.encoder(), 0))
        with pytest.raises(RuntimeError):
            ens.predict([(2, 1, 1, 2, 1, 1)])


class TestProbing:
    def test_gates_by_local_error(self, lv, lv_pool, low_fidelity, train):
        configs, values = train
        ens = Probing(
            low_fidelity, default_surrogate(lv.encoder(), 0), lv.encoder(),
            tolerance=0.1,
        )
        ens.fit(configs, values)
        pred = ens.predict(list(lv_pool.configs[60:80]))
        assert pred.shape == (20,) and (pred > 0).all()

    def test_extreme_tolerances_select_single_model(
        self, lv, lv_pool, low_fidelity, train
    ):
        configs, values = train
        test = list(lv_pool.configs[60:75])
        trust_all = Probing(
            low_fidelity, default_surrogate(lv.encoder(), 0), lv.encoder(),
            tolerance=1e9,
        ).fit(configs, values)
        np.testing.assert_allclose(
            trust_all.predict(test), low_fidelity.predict(test)
        )
        trust_none = Probing(
            low_fidelity, default_surrogate(lv.encoder(), 0), lv.encoder(),
            tolerance=0.0,
        ).fit(configs, values)
        ml_only = default_surrogate(lv.encoder(), 0).fit(configs, values)
        np.testing.assert_allclose(trust_none.predict(test), ml_only.predict(test))


class TestBayesianOptimization:
    def test_respects_budget(self, lv, lv_pool, lv_histories):
        problem = TuningProblem.create(
            lv, EXECUTION_TIME, lv_pool, budget_runs=15, seed=2,
            histories=lv_histories,
        )
        result = BayesianOptimization(iterations=3).tune(problem)
        assert result.runs_used == 15
        assert result.algorithm == "BO"
        assert result.best_config(lv_pool) in lv_pool.configs

    def test_bootstrap_variant_uses_histories(self, lv, lv_pool, lv_histories):
        problem = TuningProblem.create(
            lv, EXECUTION_TIME, lv_pool, budget_runs=15, seed=2,
            histories=lv_histories,
        )
        result = BayesianOptimization(iterations=3, bootstrap=True).tune(problem)
        assert result.algorithm == "CEAL-BO"
        assert result.runs_used == 15
        assert len(result.measured) == 15  # histories free

    def test_bootstrap_pays_without_histories(self, lv, lv_pool, lv_histories):
        problem = TuningProblem.create(
            lv, EXECUTION_TIME, lv_pool, budget_runs=16, seed=2, histories={},
        )
        # No histories attached -> cannot charge component runs either.
        with pytest.raises(RuntimeError):
            BayesianOptimization(iterations=3, bootstrap=True).tune(problem)

    def test_finds_good_config(self, lv, lv_pool, lv_histories):
        best = lv_pool.best_value("execution_time")
        gaps = []
        for rep in range(4):
            problem = TuningProblem.create(
                lv, EXECUTION_TIME, lv_pool, budget_runs=20, seed=900 + rep,
                histories=lv_histories,
            )
            result = BayesianOptimization(iterations=4).tune(problem)
            gaps.append(result.best_actual_value(lv_pool) / best)
        assert np.mean(gaps) < 1.3
