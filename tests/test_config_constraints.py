"""Unit tests for repro.config.constraints."""

import pytest

from repro.config.constraints import (
    AllocationConstraint,
    AndConstraint,
    ComponentPlacementSpec,
    PredicateConstraint,
    conjoin,
    nodes_for,
)
from repro.config.space import ParameterSpace, int_range, join_spaces


def test_nodes_for_rounds_up():
    assert nodes_for(36, 35) == 2
    assert nodes_for(35, 35) == 1
    assert nodes_for(1, 35) == 1


def test_nodes_for_rejects_nonpositive():
    with pytest.raises(ValueError):
        nodes_for(0, 35)
    with pytest.raises(ValueError):
        nodes_for(10, 0)


def test_predicate_constraint_wraps():
    c = PredicateConstraint(lambda cfg: cfg[0] > 0, "positive first entry")
    assert c((1,))
    assert not c((0,))


def test_and_constraint_all_must_pass():
    c = AndConstraint((lambda cfg: cfg[0] > 0, lambda cfg: cfg[0] < 10))
    assert c((5,))
    assert not c((0,))
    assert not c((10,))


def test_conjoin_builds_and():
    c = conjoin(lambda cfg: True, lambda cfg: cfg[0] == 1)
    assert c((1,))
    assert not c((2,))


@pytest.fixture()
def joint_space():
    sim = ParameterSpace(
        (int_range("procs", 2, 1085), int_range("ppn", 1, 35),
         int_range("threads", 1, 4))
    )
    viz = ParameterSpace((int_range("procs", 2, 1085), int_range("ppn", 1, 35)))
    return join_spaces([("sim", sim), ("viz", viz)])


@pytest.fixture()
def allocation(joint_space):
    return AllocationConstraint(
        space=joint_space,
        components=(
            ComponentPlacementSpec(("sim.procs",), "sim.ppn", "sim.threads"),
            ComponentPlacementSpec(("viz.procs",), "viz.ppn", None),
        ),
        max_nodes=32,
        cores_per_node=36,
    )


class TestAllocationConstraint:
    def test_feasible_config(self, allocation):
        # sim: 288/18 = 16 nodes, viz: 288/18 = 16 nodes -> 32 total
        assert allocation((288, 18, 2, 288, 18))

    def test_node_cap_violated(self, allocation):
        # sim: 1085/35 = 31 nodes, viz: 70/35 = 2 nodes -> 33 > 32
        assert not allocation((1085, 35, 1, 70, 35))

    def test_core_oversubscription(self, allocation):
        # ppn 18 * threads 3 = 54 > 36 cores
        assert not allocation((36, 18, 3, 2, 1))

    def test_ppn_exceeding_procs(self, allocation):
        # 2 procs but 35 per node declared
        assert not allocation((2, 35, 1, 2, 1))

    def test_total_nodes(self, allocation):
        assert allocation.total_nodes((288, 18, 2, 288, 18)) == 32

    def test_extra_nodes_count(self, joint_space):
        constraint = AllocationConstraint(
            space=joint_space,
            components=(
                ComponentPlacementSpec(("sim.procs",), "sim.ppn", None),
            ),
            max_nodes=3,
            cores_per_node=36,
            extra_nodes=2,
        )
        # sim needs 2 nodes + 2 extra = 4 > 3
        assert not constraint((36, 18, 1, 2, 1))
        assert constraint((18, 18, 1, 2, 1))


def test_product_procs_spec(joint_space):
    grid = ParameterSpace((int_range("px", 2, 8), int_range("py", 2, 8),
                           int_range("ppn", 1, 35)))
    joint = join_spaces([("heat", grid)])
    spec = ComponentPlacementSpec(("heat.px", "heat.py"), "heat.ppn", None)
    assert spec.procs(joint, (4, 8, 16)) == 32
    assert spec.nodes(joint, (4, 8, 16)) == 2
