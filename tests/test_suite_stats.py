"""Tests for repro.experiments.stats (bootstrap CIs, paired tests)."""

import numpy as np
import pytest

from repro.experiments.stats import (
    bootstrap_ci,
    paired_permutation_test,
    wilcoxon_signed_rank,
)


class TestBootstrapCI:
    def test_single_value_degenerates_to_point(self):
        ci = bootstrap_ci([3.5])
        assert ci == {"mean": 3.5, "lo": 3.5, "hi": 3.5, "n": 1}

    def test_constant_sample_degenerates_to_point(self):
        ci = bootstrap_ci([2.0, 2.0, 2.0])
        assert ci["lo"] == ci["hi"] == ci["mean"] == 2.0

    def test_interval_brackets_mean(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10.0, 1.0, size=40)
        ci = bootstrap_ci(values)
        assert ci["lo"] < ci["mean"] < ci["hi"]
        assert ci["mean"] == pytest.approx(values.mean())
        assert ci["n"] == 40

    def test_deterministic_across_calls(self):
        values = [1.0, 2.5, 3.0, 4.75, 2.25]
        assert bootstrap_ci(values) == bootstrap_ci(values)

    def test_higher_confidence_widens(self):
        rng = np.random.default_rng(1)
        values = rng.normal(0.0, 1.0, size=30)
        narrow = bootstrap_ci(values, confidence=0.80)
        wide = bootstrap_ci(values, confidence=0.99)
        assert wide["hi"] - wide["lo"] > narrow["hi"] - narrow["lo"]

    def test_rejects_empty_and_bad_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.0)


class TestPairedPermutation:
    def test_identical_samples_p_one(self):
        x = [1.0, 2.0, 3.0]
        out = paired_permutation_test(x, x)
        assert out["p"] == 1.0
        assert out["mean_diff"] == 0.0

    def test_exact_enumeration_small_n(self):
        out = paired_permutation_test([1.0, 2.0, 3.0], [0.0, 0.0, 0.0])
        assert out["exact"] is True
        # All 8 sign assignments; only (+,+,+) and (-,-,-) reach |mean|=2.
        assert out["p"] == pytest.approx(2 / 8)

    def test_strong_effect_significant(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0.0, 0.1, size=15)
        y = x + 1.0
        out = paired_permutation_test(x, y)
        assert out["p"] <= 2 / 2**15 + 1e-12
        assert out["mean_diff"] == pytest.approx(-1.0, abs=0.1)

    def test_monte_carlo_path_deterministic(self):
        rng = np.random.default_rng(3)
        x = rng.normal(0, 1, size=30)
        y = rng.normal(0.2, 1, size=30)
        a = paired_permutation_test(x, y)
        b = paired_permutation_test(x, y)
        assert a == b
        assert a["exact"] is False
        assert 0.0 <= a["p"] <= 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paired_permutation_test([1.0, 2.0], [1.0])


class TestWilcoxon:
    def test_identical_samples_vacuous(self):
        out = wilcoxon_signed_rank([1.0, 2.0], [1.0, 2.0])
        assert out["p"] == 1.0
        assert out["n"] == 0

    def test_known_example(self):
        # scipy.stats.wilcoxon(x, y, correction=False, mode="approx",
        # zero_method="pratt") gives statistic 22.0, p = 0.60960111552.
        x = [125, 115, 130, 140, 140, 115, 140, 125, 140, 135]
        y = [110, 122, 125, 120, 140, 124, 123, 137, 135, 145]
        out = wilcoxon_signed_rank(x, y)
        assert out["n"] == 9  # one zero difference drops
        assert out["statistic"] == 22.0
        assert out["p"] == pytest.approx(0.60960111552, abs=1e-9)

    def test_strong_effect_small_p(self):
        x = np.arange(1.0, 16.0)
        out = wilcoxon_signed_rank(x, x + 5.0)
        assert out["p"] < 0.01

    def test_p_bounded(self):
        rng = np.random.default_rng(4)
        x = rng.normal(0, 1, 20)
        y = rng.normal(0, 1, 20)
        out = wilcoxon_signed_rank(x, y)
        assert 0.0 <= out["p"] <= 1.0
