"""Unit tests for the DES engine (events, processes, time)."""

import pytest

from repro.des import AllOf, Environment, Interrupt
from repro.des.engine import EmptySchedule


class TestEvent:
    def test_succeed_carries_value(self):
        env = Environment()
        ev = env.event()
        ev.succeed(42)
        env.run()
        assert ev.processed and ev.ok and ev.value == 42

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(RuntimeError):
            _ = env.event().value


class TestTimeout:
    def test_advances_clock(self):
        env = Environment()
        env.timeout(5.0)
        env.run()
        assert env.now == 5.0

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_nan_delay_rejected(self):
        # ``delay < 0`` alone lets NaN through (NaN comparisons are all
        # False) and a NaN timestamp poisons the heap's tuple ordering.
        env = Environment()
        with pytest.raises(ValueError, match="NaN"):
            env.timeout(float("nan"))

    def test_ordering_is_chronological(self):
        env = Environment()
        seen = []
        for delay in (3.0, 1.0, 2.0):
            t = env.timeout(delay, value=delay)
            t.callbacks.append(lambda ev: seen.append(ev.value))
        env.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_fifo_ties_at_same_instant(self):
        env = Environment()
        seen = []
        for tag in "abc":
            t = env.timeout(1.0, value=tag)
            t.callbacks.append(lambda ev: seen.append(ev.value))
        env.run()
        assert seen == ["a", "b", "c"]


class TestRun:
    def test_run_until_time(self):
        env = Environment()
        env.timeout(1.0)
        env.timeout(10.0)
        env.run(until=5.0)
        assert env.now == 5.0

    def test_run_until_past_rejected(self):
        env = Environment()
        env.timeout(10.0)
        env.run(until=5.0)
        with pytest.raises(ValueError):
            env.run(until=1.0)

    def test_step_on_empty_raises(self):
        with pytest.raises(EmptySchedule):
            Environment().step()

    def test_run_until_event_returns_value(self):
        env = Environment()

        def proc():
            yield env.timeout(2.0)
            return "done"

        p = env.process(proc())
        assert env.run(p) == "done"
        assert env.now == 2.0

    def test_run_until_event_deadlock_detected(self):
        env = Environment()
        never = env.event()

        def proc():
            yield never

        p = env.process(proc())
        with pytest.raises(RuntimeError, match="deadlock"):
            env.run(p)

    def test_run_until_nan_rejected(self):
        env = Environment()
        env.timeout(1.0)
        with pytest.raises(ValueError, match="NaN"):
            env.run(until=float("nan"))

    def test_deadline_equal_to_next_event_processes_it(self):
        env = Environment()
        fired = []
        t = env.timeout(5.0, value="edge")
        t.callbacks.append(lambda ev: fired.append(ev.value))
        env.run(until=5.0)
        assert fired == ["edge"] and env.now == 5.0


class TestUnhandledFailure:
    def test_failed_event_without_callbacks_raises(self):
        """A failure nobody observes must not vanish silently."""
        env = Environment()
        env.event().fail(RuntimeError("lost"))
        with pytest.raises(RuntimeError, match="lost"):
            env.run()

    def test_defused_failure_is_silent(self):
        env = Environment()
        ev = env.event()
        ev.fail(RuntimeError("handled elsewhere"))
        ev.defuse()
        env.run()
        assert ev.processed and not ev.ok

    def test_waiting_process_defuses(self):
        """A process catching the failure counts as handling it."""
        env = Environment()
        ev = env.event()

        def failer():
            yield env.timeout(1.0)
            ev.fail(RuntimeError("caught"))

        def waiter():
            with pytest.raises(RuntimeError, match="caught"):
                yield ev

        env.process(waiter())
        env.process(failer())
        env.run()
        assert ev.defused

    def test_run_until_failed_event_defuses(self):
        env = Environment()
        ev = env.event()
        ev.fail(RuntimeError("reraised by run"))
        with pytest.raises(RuntimeError, match="reraised by run"):
            env.run(ev)


class TestProcess:
    def test_sequential_timeouts(self):
        env = Environment()
        times = []

        def proc():
            for _ in range(3):
                yield env.timeout(1.0)
                times.append(env.now)

        env.process(proc())
        env.run()
        assert times == [1.0, 2.0, 3.0]

    def test_processes_interleave(self):
        env = Environment()
        order = []

        def proc(tag, delay):
            yield env.timeout(delay)
            order.append(tag)

        env.process(proc("slow", 2.0))
        env.process(proc("fast", 1.0))
        env.run()
        assert order == ["fast", "slow"]

    def test_yield_non_event_fails_process(self):
        env = Environment()

        def proc():
            yield 42

        p = env.process(proc())
        with pytest.raises(TypeError):
            env.run(p)

    def test_exception_propagates_to_waiter(self):
        env = Environment()

        def failing():
            yield env.timeout(1.0)
            raise ValueError("boom")

        def waiter():
            with pytest.raises(ValueError, match="boom"):
                yield env.process(failing())
            return "handled"

        p = env.process(waiter())
        assert env.run(p) == "handled"

    def test_requires_generator(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_process_value_is_return(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            return 7

        p = env.process(proc())
        env.run()
        assert p.value == 7

    def test_interrupt_wakes_process(self):
        env = Environment()
        log = []

        def sleeper():
            try:
                yield env.timeout(100.0)
                log.append("overslept")
            except Interrupt as exc:
                log.append(("interrupted", exc.cause, env.now))

        def interrupter(target):
            yield env.timeout(1.0)
            target.interrupt("wake up")

        p = env.process(sleeper())
        env.process(interrupter(p))
        env.run(p)
        assert log == [("interrupted", "wake up", 1.0)]

    def test_interrupt_finished_process_rejected(self):
        env = Environment()

        def quick():
            yield env.timeout(0.0)

        p = env.process(quick())
        env.run()
        with pytest.raises(RuntimeError):
            p.interrupt()


class TestAllOf:
    def test_waits_for_all(self):
        env = Environment()
        a = env.timeout(1.0, value="a")
        b = env.timeout(3.0, value="b")
        all_ev = AllOf(env, [a, b])
        env.run(all_ev)
        assert env.now == 3.0
        assert all_ev.value == ["a", "b"]

    def test_empty_fires_immediately(self):
        env = Environment()
        all_ev = AllOf(env, [])
        env.run()
        assert all_ev.processed and all_ev.value == []

    def test_failure_propagates(self):
        env = Environment()

        def failing():
            yield env.timeout(1.0)
            raise RuntimeError("bad")

        p = env.process(failing())
        ok = env.timeout(5.0)
        all_ev = env.all_of([p, ok])
        with pytest.raises(RuntimeError, match="bad"):
            env.run(all_ev)

    def test_already_processed_members_counted(self):
        env = Environment()
        a = env.timeout(0.0, value="a")
        env.run()
        b = env.timeout(1.0, value="b")
        all_ev = env.all_of([a, b])
        env.run(all_ev)
        assert all_ev.value == ["a", "b"]

    def test_already_failed_member_fails_immediately(self):
        env = Environment()
        ev = env.event()
        ev.fail(RuntimeError("early"))
        ev.defuse()
        env.run()  # ev is processed (and handled) before the AllOf exists
        all_ev = env.all_of([ev, env.timeout(1.0)])
        with pytest.raises(RuntimeError, match="early"):
            env.run(all_ev)

    def test_second_failure_is_defused(self):
        """First failure wins; later failures must not raise unhandled."""
        env = Environment()

        def failing(tag, delay):
            yield env.timeout(delay)
            raise RuntimeError(tag)

        a = env.process(failing("first", 1.0))
        b = env.process(failing("second", 2.0))
        all_ev = env.all_of([a, b])
        with pytest.raises(RuntimeError, match="first"):
            env.run(all_ev)
        env.run()  # b fails after the AllOf already failed — silently
        assert b.processed and b.defused
