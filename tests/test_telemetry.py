"""Telemetry subsystem: hub, exporters, worker merge, CLI surface.

The acceptance bar for the observability layer:

* the Chrome exporter emits valid, properly nested traces that its own
  checker (and therefore Perfetto) accepts,
* the JSONL sink round-trips through ``json.loads`` line by line,
* worker telemetry merged from a parallel fan-out is deterministic
  across ``--jobs`` settings in every non-timing field, and
* tuning results are bit-identical with telemetry on and off.
"""

import io
import json

import pytest

from repro import telemetry
from repro.cli import main
from repro.core.algorithms import RandomSampling
from repro.core.autotuner import AutoTuner
from repro.experiments.runner import (
    SUMMARY_PERCENTILES,
    AlgorithmSpec,
    run_trials,
    summarize,
)
from repro.insitu.coupled import run_coupled
from repro.insitu.tracing import RunTracer
from repro.telemetry import (
    SCHEMA_VERSION,
    JsonlSink,
    Telemetry,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)

SPECS = (AlgorithmSpec("RS", RandomSampling),)


def make_hub_with_nested_spans() -> Telemetry:
    hub = Telemetry()
    with hub.span("outer", category="test", depth=0):
        with hub.span("inner", category="test", depth=1):
            with hub.span("leaf", category="test", depth=2):
                pass
        with hub.span("sibling", category="test"):
            pass
    hub.counter("things").inc(3)
    hub.gauge("peak").set_max(7)
    hub.histogram("lat").observe(0.002)
    return hub


class TestHub:
    def test_default_hub_is_disabled_null(self):
        hub = telemetry.get()
        assert not hub.enabled
        assert not telemetry.enabled()
        # Every operation is a no-op and must not raise.
        with hub.span("nothing") as span:
            span.set(key="value")
        hub.counter("c").inc()
        hub.gauge("g").set_max(1)
        hub.histogram("h").observe(0.5)
        assert hub.snapshot() is None

    def test_use_installs_and_restores(self):
        before = telemetry.get()
        hub = Telemetry()
        with telemetry.use(hub):
            assert telemetry.get() is hub
            assert telemetry.enabled()
        assert telemetry.get() is before

    def test_spans_nest_by_call_stack(self):
        hub = make_hub_with_nested_spans()
        by_name = {record.name: record for record in hub.spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["leaf"].parent_id == by_name["inner"].span_id
        assert by_name["sibling"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None
        for record in hub.spans:
            assert record.end >= record.start

    def test_metric_kind_conflict_rejected(self):
        hub = Telemetry()
        hub.counter("runs")
        with pytest.raises(ValueError, match="Counter"):
            hub.gauge("runs")

    def test_merge_worker_remaps_ids_and_adds_metrics(self):
        parent = Telemetry()
        with parent.span("parent.work"):
            pass
        worker = make_hub_with_nested_spans()
        parent.merge_worker(worker.snapshot(), worker=3)
        names = [record.name for record in parent.spans]
        assert names == ["parent.work", "leaf", "inner", "sibling", "outer"]
        by_name = {record.name: record for record in parent.spans}
        assert by_name["leaf"].parent_id == by_name["inner"].span_id
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["parent.work"].worker is None
        assert by_name["outer"].worker == 3
        ids = [record.span_id for record in parent.spans]
        assert len(set(ids)) == len(ids)
        metrics = {m["name"]: m for m in parent.metrics_snapshot()}
        assert metrics["things"]["value"] == 3
        assert metrics["peak"]["value"] == 7
        assert metrics["lat"]["count"] == 1

    def test_merge_rejects_unknown_snapshot_version(self):
        parent = Telemetry()
        payload = make_hub_with_nested_spans().snapshot()
        payload["version"] = 999
        with pytest.raises(ValueError, match="version"):
            parent.merge_worker(payload, worker=0)

    def test_summarize_text_report(self):
        hub = make_hub_with_nested_spans()
        text = telemetry.summarize(hub)
        for name in ("outer", "inner", "leaf", "things", "lat"):
            assert name in text


class TestChromeExporter:
    def test_trace_is_valid_json_with_nonnegative_durations(self):
        hub = make_hub_with_nested_spans()
        trace = to_chrome_trace(hub)
        parsed = json.loads(json.dumps(trace))
        validate_chrome_trace(parsed)
        x_events = [e for e in parsed["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in x_events} == {
            "outer", "inner", "leaf", "sibling",
        }
        for event in x_events:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        assert parsed["otherData"]["schema_version"] == SCHEMA_VERSION
        metric_names = {m["name"] for m in parsed["otherData"]["metrics"]}
        assert {"things", "peak", "lat"} <= metric_names

    def test_children_nest_inside_parents(self):
        hub = make_hub_with_nested_spans()
        events = {
            e["name"]: e
            for e in to_chrome_trace(hub)["traceEvents"]
            if e["ph"] == "X"
        }
        outer = events["outer"]
        for child in ("inner", "sibling"):
            assert events[child]["ts"] >= outer["ts"]
            child_end = events[child]["ts"] + events[child]["dur"]
            assert child_end <= outer["ts"] + outer["dur"]

    def test_write_chrome_trace_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, make_hub_with_nested_spans())
        validate_chrome_trace(path.read_text(encoding="utf-8"))

    def test_validator_rejects_overlap_without_nesting(self):
        events = [
            {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 0, "tid": 0},
            {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 0, "tid": 0},
        ]
        with pytest.raises(ValueError, match="overlap"):
            validate_chrome_trace(events)
        # The same intervals on different tracks are fine.
        events[1]["tid"] = 1
        validate_chrome_trace(events)

    def test_validator_rejects_negative_duration(self):
        bad = [{"name": "a", "ph": "X", "ts": 0, "dur": -1, "pid": 0, "tid": 0}]
        with pytest.raises(ValueError, match="duration"):
            validate_chrome_trace(bad)

    def test_validator_rejects_unbalanced_begin_end(self):
        with pytest.raises(ValueError, match="no open 'B'"):
            validate_chrome_trace([{"name": "a", "ph": "E", "ts": 1}])
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome_trace([{"name": "a", "ph": "B", "ts": 1}])

    def test_validator_rejects_unknown_phase_and_non_json(self):
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace([{"name": "a", "ph": "Z", "ts": 0}])
        with pytest.raises(ValueError, match="JSON"):
            validate_chrome_trace(
                [{"name": "a", "ph": "M", "args": {"x": object()}}]
            )


class TestJsonlSink:
    def test_every_line_parses_and_schema_is_versioned(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        hub = Telemetry(sinks=[JsonlSink(path)])
        with telemetry.use(hub):
            with hub.span("work", category="test", answer=42):
                hub.counter("runs").inc(2)
        hub.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "meta"
        assert records[0]["version"] == SCHEMA_VERSION
        spans = [r for r in records if r["type"] == "span"]
        metrics = [r for r in records if r["type"] == "metric"]
        assert [s["name"] for s in spans] == ["work"]
        assert spans[0]["attrs"] == {"answer": 42}
        assert spans[0]["ts"] >= 0 and spans[0]["dur"] >= 0
        assert {m["name"] for m in metrics} == {"runs"}


class TestRunTracerBridge:
    def test_to_chrome_trace_validates(self, lv, rng):
        config = lv.space.sample(rng, 1, constraint=lv.constraint)[0]
        tracer = RunTracer()
        run_coupled(lv, config, tracer=tracer)
        trace = tracer.to_chrome_trace()
        validate_chrome_trace(trace)
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert {"startup", "compute"} <= names

    def test_bridged_timeline_keeps_its_own_pid(self, lv, rng):
        config = lv.space.sample(rng, 1, constraint=lv.constraint)[0]
        tracer = RunTracer()
        run_coupled(lv, config, tracer=tracer)
        hub = Telemetry()
        with hub.span("measure"):
            pass
        hub.record_simulated(tracer.chrome_events())
        trace = validate_chrome_trace(to_chrome_trace(hub))
        pids = {
            e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"
        }
        assert pids == {0, 1}


def span_structure(hub: Telemetry) -> list[tuple]:
    """Deterministic view of a hub's spans (no wall-clock fields)."""
    return [
        (r.name, r.worker, r.parent_id, tuple(sorted(r.attributes)))
        for r in hub.spans
    ]


def metric_structure(hub: Telemetry) -> dict:
    """Deterministic view of metrics (histogram totals are timing)."""
    out = {}
    for snap in hub.metrics_snapshot():
        if snap["kind"] == "histogram":
            out[snap["name"]] = snap["count"]
        else:
            out[snap["name"]] = snap["value"]
    return out


class TestParallelMerge:
    def run_captured(self, lv, jobs):
        hub = Telemetry()
        with telemetry.use(hub):
            trials = run_trials(
                lv, "computer_time", SPECS, budget=5, repeats=4,
                pool_size=150, pool_seed=7, history_size=120, jobs=jobs,
            )
        return hub, trials

    def test_merged_telemetry_deterministic_across_jobs(
        self, lv, lv_pool, lv_histories
    ):
        # lv_pool/lv_histories pre-warm the memoised pool so both runs
        # see identical cache behaviour (the first generate_pool call
        # would otherwise record the generation spans).
        serial_hub, serial_trials = self.run_captured(lv, jobs=1)
        parallel_hub, parallel_trials = self.run_captured(lv, jobs=2)
        assert span_structure(serial_hub) == span_structure(parallel_hub)
        assert metric_structure(serial_hub) == metric_structure(parallel_hub)
        for a, b in zip(serial_trials, parallel_trials):
            assert a.best_value == b.best_value
            assert a.seed == b.seed
        validate_chrome_trace(to_chrome_trace(parallel_hub))

    def test_worker_attribution_covers_all_tasks(self, lv, lv_pool):
        hub, _ = self.run_captured(lv, jobs=2)
        workers = {
            r.worker for r in hub.spans if r.name == "runner.task"
        }
        assert workers == {0, 1, 2, 3}

    def test_expected_spans_and_metrics_recorded(self, lv, lv_pool):
        hub, _ = self.run_captured(lv, jobs=1)
        names = {r.name for r in hub.spans}
        assert {"runner.task", "runner.trial", "driver.run",
                "driver.cycle", "collector.measure"} <= names
        metrics = metric_structure(hub)
        assert metrics["trials_run"] == 4
        assert metrics["runs_measured"] > 0


class TestBitIdentity:
    def test_results_identical_with_telemetry_on_and_off(self, lv, lv_pool):
        def tune_once():
            return AutoTuner(
                lv, objective="computer_time", budget=8,
                algorithm=RandomSampling(), pool_size=150, seed=7,
            ).tune()

        plain = tune_once()
        with telemetry.use(Telemetry()):
            traced = tune_once()
        assert traced.best_value == plain.best_value
        assert traced.pool_best_value == plain.pool_best_value
        assert traced.best_config == plain.best_config
        assert traced.cost == plain.cost


class TestSummarizePercentiles:
    def test_summary_reports_wall_clock_tails(self, lv, lv_pool):
        trials = run_trials(
            lv, "computer_time", SPECS, budget=5, repeats=3,
            pool_size=150, pool_seed=7, history_size=120,
        )
        row = summarize(trials)["RS"]
        for p in SUMMARY_PERCENTILES:
            assert f"wall_seconds_p{p}" in row
            assert f"fit_seconds_p{p}" in row
        assert row["wall_seconds_p50"] <= row["wall_seconds_p99"]
        assert row["wall_seconds_p99"] <= max(t.wall_seconds for t in trials)


class TestCliTelemetry:
    TUNE = [
        "tune", "--workflow", "LV", "--objective", "execution_time",
        "--budget", "6", "--pool-size", "150", "--algorithm", "rs",
        "--seed", "7",
    ]

    def test_chrome_trace_written_and_valid(self, tmp_path):
        path = tmp_path / "out.trace"
        out = io.StringIO()
        code = main(self.TUNE + ["--telemetry", str(path)], out=out)
        assert code == 0
        trace = validate_chrome_trace(path.read_text(encoding="utf-8"))
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert {"driver.run", "driver.cycle", "collector.measure"} <= names
        # stdout stays machine-readable: the report, nothing else.
        assert "recommended configuration" in out.getvalue()

    def test_jsonl_lines_parse(self, tmp_path):
        path = tmp_path / "out.jsonl"
        code = main(
            self.TUNE
            + ["--telemetry", str(path), "--telemetry-format", "jsonl"],
            out=io.StringIO(),
        )
        assert code == 0
        records = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert records[0]["type"] == "meta"
        assert any(r["type"] == "span" for r in records)
        assert any(r["type"] == "metric" for r in records)

    def test_no_flag_leaves_null_hub_installed(self):
        code = main(self.TUNE, out=io.StringIO())
        assert code == 0
        assert not telemetry.enabled()
