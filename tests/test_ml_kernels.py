"""Old-vs-new bit-identity for the vectorized ML kernels.

The fast layer (presorted tree growth, packed-ensemble prediction,
pool-score caches) must be a pure performance change: every test here
compares against the reference kernels in :mod:`repro.ml._reference`
(verbatim copies of the pre-vectorization implementations) with exact
array equality, across randomly drawn shapes, tie structures, and
hyper-parameters.
"""

import json
import pickle
from pathlib import Path

import numpy as np
import pytest

from repro.config.encoding import ConfigEncoder, DerivedFeature
from repro.config.space import Parameter, ParameterSpace
from repro.ml import (
    GradientBoostedTrees,
    PackedEnsemble,
    RandomForestRegressor,
    RegressionTree,
    bin_codes,
    make_bins,
)
from repro.ml._reference import (
    reference_ensemble_predict,
    reference_fit_gradients,
    reference_forest_predict,
    reference_tree_predict,
)

DATA = Path(__file__).parent / "data"


def _random_matrix(rng, n, d, case):
    """Feature matrices with the tie/correlation structure that bites."""
    X = rng.normal(size=(n, d))
    if case % 3 == 0:
        X[:, 0] = rng.integers(0, 3, size=n)  # discrete, heavy ties
    if d > 1 and case % 4 == 0:
        X[:, -1] = X[:, 0] * 2  # exactly correlated duplicate column
    if case % 5 == 0:
        X[:, d // 2] = np.round(X[:, d // 2], 1)
    return X


# -- presorted tree growth ----------------------------------------------------


@pytest.mark.parametrize("case", range(30))
def test_tree_fit_bit_identical_to_reference(case):
    rng = np.random.default_rng(case)
    n = int(rng.integers(2, 250))
    d = int(rng.integers(1, 9))
    X = _random_matrix(rng, n, d, case)
    g = rng.normal(size=n)
    h = np.abs(rng.normal(size=n)) + 0.1
    params = dict(
        max_depth=int(rng.integers(0, 7)),
        min_samples_leaf=int(rng.integers(1, 4)),
        min_child_weight=float(rng.choice([1e-6, 0.5, 2.0])),
        reg_lambda=float(rng.choice([0.0, 1.0, 3.0])),
        gamma=float(rng.choice([0.0, 0.1])),
    )
    if case % 2:
        params["max_features"] = int(rng.integers(1, d + 1))
        params["random_state"] = case
    new = RegressionTree(**params).fit_gradients(X, g, h)
    old = RegressionTree(**params)
    reference_fit_gradients(old, X, g, h, lam=params["reg_lambda"])
    assert np.array_equal(new.feature, old.feature)
    assert np.array_equal(new.threshold, old.threshold, equal_nan=True)
    assert np.array_equal(new.left, old.left)
    assert np.array_equal(new.right, old.right)
    assert np.array_equal(new.value, old.value)


def test_tree_depth_and_n_nodes():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 4))
    y = rng.normal(size=200)
    for max_depth in (0, 1, 3, 8):
        tree = RegressionTree(max_depth=max_depth).fit(X, y)
        assert tree.n_nodes == tree.feature.size
        # Iterative depth must agree with an explicit recursive walk.
        def walk(node):
            if tree.left[node] == -1:
                return 0
            return 1 + max(walk(tree.left[node]), walk(tree.right[node]))

        assert tree.depth == walk(0)
        assert tree.depth <= max_depth
        # n_nodes of a binary tree is odd; a stump has exactly one node.
        assert tree.n_nodes % 2 == 1
        if max_depth == 0:
            assert tree.depth == 0 and tree.n_nodes == 1


def test_unfitted_tree_properties_raise():
    tree = RegressionTree()
    with pytest.raises(RuntimeError):
        tree.depth
    with pytest.raises(RuntimeError):
        tree.n_nodes


# -- packed-ensemble prediction ----------------------------------------------


@pytest.mark.parametrize("case", range(15))
def test_boosting_predict_bit_identical_to_reference(case):
    rng = np.random.default_rng(100 + case)
    n = int(rng.integers(5, 200))
    d = int(rng.integers(1, 8))
    X = _random_matrix(rng, n, d, case)
    y = rng.normal(size=n) ** 2 + 0.1
    model = GradientBoostedTrees(
        n_estimators=int(rng.integers(1, 30)),
        learning_rate=float(rng.uniform(0.05, 0.5)),
        max_depth=int(rng.integers(1, 6)),
        subsample=float(rng.uniform(0.5, 1.0)),
        colsample=float(rng.uniform(0.5, 1.0)),
        log_target=bool(case % 2),
        random_state=case,
    ).fit(X, y)
    X_test = rng.normal(size=(int(rng.integers(1, 400)), d))
    assert np.array_equal(
        model.predict(X_test), reference_ensemble_predict(model, X_test)
    )


@pytest.mark.parametrize("case", range(10))
def test_forest_predict_bit_identical_to_reference(case):
    rng = np.random.default_rng(200 + case)
    n = int(rng.integers(5, 150))
    d = int(rng.integers(1, 7))
    X = _random_matrix(rng, n, d, case)
    y = rng.normal(size=n)
    model = RandomForestRegressor(
        n_estimators=int(rng.integers(1, 20)),
        max_depth=int(rng.integers(1, 9)),
        random_state=case,
    ).fit(X, y)
    X_test = rng.normal(size=(int(rng.integers(1, 200)), d))
    assert np.array_equal(
        model.predict(X_test), reference_forest_predict(model, X_test)
    )


def test_packed_leaf_indices_land_on_leaves():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(120, 5))
    y = rng.normal(size=120) ** 2 + 0.1
    model = GradientBoostedTrees(n_estimators=7, random_state=0).fit(X, y)
    packed = model._packed
    leaves = packed.leaf_indices(rng.normal(size=(50, 5)))
    assert leaves.shape == (50, packed.n_trees)
    # A leaf self-loops: stepping once more stays put.
    assert np.array_equal(packed.left[leaves], leaves)
    assert np.array_equal(packed.right[leaves], leaves)


def test_packed_validates_input():
    rng = np.random.default_rng(4)
    X = rng.normal(size=(30, 3))
    model = GradientBoostedTrees(n_estimators=2, random_state=0).fit(
        X, np.abs(rng.normal(size=30)) + 0.1
    )
    with pytest.raises(ValueError, match="2-D"):
        model._packed.leaf_indices(np.zeros(3))
    with pytest.raises(ValueError, match="features"):
        model._packed.leaf_indices(np.zeros((4, 5)))
    with pytest.raises(ValueError, match="empty"):
        PackedEnsemble.pack([], n_features=3)


def test_single_tree_packed_matches_tree_predict():
    rng = np.random.default_rng(5)
    X = rng.normal(size=(80, 4))
    y = rng.normal(size=80)
    tree = RegressionTree(max_depth=5).fit(X, y)
    packed = PackedEnsemble.pack([tree], n_features=4)
    X_test = rng.normal(size=(60, 4))
    assert np.array_equal(packed.predict(X_test), reference_tree_predict(tree, X_test))
    assert np.array_equal(packed.predict(X_test), tree.predict(X_test))


# -- fitted-state consistency (is_fitted vs predict) --------------------------


def test_is_fitted_agrees_with_predict():
    model = GradientBoostedTrees(n_estimators=3, random_state=0)
    assert not model.is_fitted
    with pytest.raises(RuntimeError):
        model.predict(np.zeros((2, 3)))

    # The historical disagreement: _n_features set but _trees empty
    # (e.g. a strategy poking internals) used to report is_fitted=True
    # while predict raised.  Both now key off _trees.
    model._n_features = 3
    assert not model.is_fitted
    with pytest.raises(RuntimeError):
        model.predict(np.zeros((2, 3)))

    rng = np.random.default_rng(0)
    X = rng.normal(size=(30, 3))
    model.fit(X, np.abs(rng.normal(size=30)) + 0.1)
    assert model.is_fitted
    assert model.predict(X).shape == (30,)


# -- pickling / registry round-trip -------------------------------------------


def test_packed_model_pickle_roundtrip():
    rng = np.random.default_rng(6)
    X = rng.normal(size=(60, 4))
    y = np.abs(rng.normal(size=60)) + 0.1
    model = GradientBoostedTrees(n_estimators=5, random_state=1).fit(X, y)
    clone = pickle.loads(pickle.dumps(model))
    assert np.array_equal(clone.predict(X), model.predict(X))


def test_model_without_packed_state_repacks_lazily():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(60, 4))
    y = np.abs(rng.normal(size=60)) + 0.1
    model = GradientBoostedTrees(n_estimators=5, random_state=1).fit(X, y)
    want = model.predict(X)
    # Simulate a blob pickled before the packed layout existed.
    stale = pickle.loads(pickle.dumps(model))
    del stale.__dict__["_packed"]
    assert np.array_equal(stale.predict(X), want)
    assert stale._packed is not None


def test_registry_roundtrip_keeps_packed_predictions(tmp_path):
    from repro.store.db import MeasurementStore
    from repro.store.registry import ModelRegistry, training_key

    rng = np.random.default_rng(8)
    X = rng.normal(size=(40, 3))
    y = np.abs(rng.normal(size=40)) + 0.1

    def fit():
        return GradientBoostedTrees(n_estimators=4, random_state=2).fit(X, y)

    store = MeasurementStore(tmp_path / "models.db")
    registry = ModelRegistry(store)
    key = training_key("gbt", "lab", "obj", X, y, repr(GradientBoostedTrees()))
    fitted = registry.fit_or_load(key, fit)
    loaded = registry.fit_or_load(key, fit)
    assert registry.hits == 1 and registry.misses == 1
    assert getattr(loaded, "_packed", None) is not None
    assert np.array_equal(loaded.predict(X), fitted.predict(X))


# -- pre-binned (hist) builder ------------------------------------------------


def test_bin_codes_agree_with_threshold_compare():
    """The builder/predictor contract: code(x) <= b  ⟺  x <= cuts[b]."""
    rng = np.random.default_rng(9)
    X = rng.normal(size=(300, 3))
    X[:, 1] = np.round(X[:, 1], 1)
    cuts = make_bins(X, max_bins=8)
    codes = bin_codes(X, cuts)
    for j, c in enumerate(cuts):
        assert np.all(np.diff(c) > 0)
        for b in range(c.size):
            assert np.array_equal(codes[:, j] <= b, X[:, j] <= c[b])


def test_make_bins_caps_cut_count():
    rng = np.random.default_rng(10)
    X = rng.normal(size=(500, 2))
    X[:, 1] = 7.0  # constant feature -> no cuts
    cuts = make_bins(X, max_bins=16)
    assert 0 < cuts[0].size <= 15
    assert cuts[1].size == 0


def test_hist_mode_matches_pinned_fixture():
    import sys

    sys.path.insert(0, str(DATA))
    try:
        from make_pinned_hist import make_data, make_model
    finally:
        sys.path.pop(0)
    pinned = json.loads((DATA / "pinned_hist.json").read_text())
    X, y, X_test = make_data()
    model = make_model().fit(X, y)
    assert list(model.predict(X_test)) == pinned["predictions"]
    assert [int(t.n_nodes) for t in model._trees] == pinned["n_nodes"]
    assert [int(t.depth) for t in model._trees] == pinned["depths"]
    assert model._base_score == pinned["base_score"]


def test_hist_mode_close_to_exact():
    rng = np.random.default_rng(12)
    X = rng.normal(size=(400, 5))
    y = 3.0 + np.abs(X[:, 0]) * 2 + X[:, 1] ** 2 + 0.1 * rng.normal(size=400) ** 2
    kw = dict(n_estimators=30, max_depth=4, random_state=0, log_target=True)
    exact = GradientBoostedTrees(method="exact", **kw).fit(X, y)
    hist = GradientBoostedTrees(method="hist", max_bins=32, **kw).fit(X, y)
    X_test = rng.normal(size=(100, 5))
    pe, ph = exact.predict(X_test), hist.predict(X_test)
    # Not bit-identical by construction, but the same model up to binning.
    assert np.median(np.abs(ph - pe) / pe) < 0.1


def test_hist_method_validation():
    with pytest.raises(ValueError, match="method"):
        GradientBoostedTrees(method="approx")
    with pytest.raises(ValueError, match="max_bins"):
        GradientBoostedTrees(method="hist", max_bins=1)
    model = GradientBoostedTrees(method="hist", max_bins=8, n_estimators=3)
    assert model.clone().method == "hist"
    assert model.clone().max_bins == 8


# -- encoder memo and pool caches ---------------------------------------------


def _a_times_b(space, config):
    return config[0] * config[1]


def _toy_encoder() -> ConfigEncoder:
    space = ParameterSpace(
        (Parameter("a", (1, 2, 4)), Parameter("b", (10, 20)))
    )
    return ConfigEncoder(space, (DerivedFeature("a_times_b", _a_times_b),))


def test_encoder_memo_is_transparent():
    enc = _toy_encoder()
    configs = [(1, 10), (2, 20), (1, 10), (4, 20)]
    first = enc.encode(configs)
    again = enc.encode(configs)
    assert np.array_equal(first, again)
    assert np.array_equal(first[0], enc.encode_one((1, 10)))
    # Mutating a returned matrix must not poison the memo.
    first[0, 0] = 999.0
    assert np.array_equal(enc.encode([(1, 10)])[0], enc.encode_one((1, 10)))


def test_encoder_pickle_drops_memo():
    enc = _toy_encoder()
    enc.encode([(1, 10), (2, 20)])
    assert enc._memo
    restored = pickle.loads(pickle.dumps(enc))
    assert restored._memo == {}
    assert np.array_equal(
        restored.encode([(1, 10), (2, 20)]), enc.encode([(1, 10), (2, 20)])
    )


def test_telemetry_summary_surfaces_ml_kernels():
    from repro import telemetry
    from repro.core.surrogate import default_surrogate
    from repro.telemetry.hub import Telemetry

    hub = Telemetry()
    with telemetry.use(hub):
        enc = _toy_encoder()
        configs = [(a, b) for a in (1, 2, 4) for b in (10, 20)]
        values = np.array([3.0, 5.0, 2.5, 8.0, 1.5, 9.0])
        surrogate = default_surrogate(enc, random_state=0).fit(configs, values)
        surrogate.predict(configs)
        surrogate.predict(configs)  # second pass is all cache hits
    names = {r.name for r in hub.spans}
    assert {"ml.fit.boosting", "ml.predict"} <= names
    metrics = {s["name"]: s for s in hub.metrics_snapshot()}
    assert metrics["pool_cache.misses"]["value"] == len(configs)
    assert metrics["pool_cache.hits"]["value"] == len(configs)
    text = telemetry.summarize(hub)
    assert "ml kernels" in text
    assert "ml.predict" in text
    assert "pool cache" in text and "hit_rate=50.0%" in text


def test_surrogate_cache_matches_fresh_predictions():
    from repro.core.surrogate import default_surrogate

    enc = _toy_encoder()
    configs = [(a, b) for a in (1, 2, 4) for b in (10, 20)]
    values = np.array([3.0, 5.0, 2.5, 8.0, 1.5, 9.0])
    cached = default_surrogate(enc, random_state=0).fit(configs, values)
    fresh = default_surrogate(enc, random_state=0).fit(configs, values)
    subset = configs[2:5]
    # Prime the cache with a different batch, then compare subset scoring.
    cached.predict(configs)
    assert np.array_equal(cached.predict(subset), fresh.predict(subset))
    # Refit clears the cache and changes predictions accordingly.
    cached.fit(configs, values * 2.0)
    assert np.array_equal(
        cached.predict(subset),
        default_surrogate(enc, random_state=0).fit(configs, values * 2.0).predict(subset),
    )


# -- compiled fast path -------------------------------------------------------


def test_native_kernel_matches_numpy_fallback(monkeypatch):
    """The C traversal and the numpy block traversal are bit-identical.

    Covers NaN features (compare false, go right) and the tree-order
    accumulation; skipping when no compiler is available keeps the
    suite green on toolchain-less machines (the numpy path is then the
    only path, and everything else already tests it).
    """
    from repro.ml import _native, packed

    if not _native.available():
        pytest.skip("compiled kernel unavailable in this environment")
    rng = np.random.default_rng(99)
    X = _random_matrix(rng, 500, 7, case=0)
    y = np.abs(rng.normal(size=500)) + 1.0
    model = GradientBoostedTrees(
        n_estimators=37, max_depth=5, subsample=0.8, colsample=0.7,
        log_target=True, random_state=4,
    ).fit(X, y)
    pool = _random_matrix(rng, 3000, 7, case=1)
    pool[5, 2] = np.nan
    with_native = model.predict(pool)
    monkeypatch.setattr(packed._native, "packed_predict", lambda *a: None)
    assert np.array_equal(model.predict(pool), with_native)
    assert np.array_equal(with_native, reference_ensemble_predict(model, pool))


def test_unit_hessian_fastpath_matches_reference():
    """h ≡ 1 triggers the synthesized hessian prefix sums; still exact."""
    rng = np.random.default_rng(3)
    X = _random_matrix(rng, 180, 5, case=0)
    g = rng.normal(size=180)
    h = np.ones(180)
    fast = RegressionTree(max_depth=6, min_samples_leaf=3).fit_gradients(X, g, h)
    slow = RegressionTree(max_depth=6, min_samples_leaf=3)
    reference_fit_gradients(slow, X, g, h, fast.reg_lambda)
    assert np.array_equal(fast.feature, slow.feature)
    assert np.array_equal(fast.threshold, slow.threshold, equal_nan=True)
    assert np.array_equal(fast.value, slow.value)


def test_precomputed_group_id_slices_match_per_fit_ranks():
    """Un-renumbered rank slices reproduce per-subset presorting exactly."""
    from repro.ml.tree import _feature_group_ids

    rng = np.random.default_rng(12)
    X = _random_matrix(rng, 120, 6, case=0)
    g = rng.normal(size=120)
    h = np.ones(120)
    gid = _feature_group_ids(X)
    rows = rng.choice(120, size=90, replace=False)
    cols = np.sort(rng.choice(6, size=4, replace=False))
    sliced = RegressionTree(max_depth=4).fit_gradients(
        X[np.ix_(rows, cols)], g[rows], h[rows],
        group_ids=gid[np.ix_(rows, cols)],
    )
    fresh = RegressionTree(max_depth=4).fit_gradients(
        X[np.ix_(rows, cols)], g[rows], h[rows]
    )
    assert np.array_equal(sliced.threshold, fresh.threshold, equal_nan=True)
    assert np.array_equal(sliced.value, fresh.value)


def test_group_ids_shape_mismatch_raises():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(30, 3))
    with pytest.raises(ValueError, match="group_ids"):
        RegressionTree().fit_gradients(
            X, -X[:, 0], np.ones(30), group_ids=np.zeros((30, 2), dtype=np.uint16)
        )
