"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_tune_defaults(self):
        args = build_parser().parse_args(["tune"])
        assert args.workflow == "LV"
        assert args.objective == "computer_time"
        assert args.budget == 50
        assert args.algorithm == "ceal"

    def test_reproduce_requires_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce"])

    def test_reproduce_jobs_flag(self):
        args = build_parser().parse_args(
            ["reproduce", "--target", "fig05", "--jobs", "auto"]
        )
        assert args.jobs == "auto"
        args = build_parser().parse_args(["reproduce", "--target", "fig05"])
        assert args.jobs is None

    def test_invalid_workflow_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--workflow", "XX"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestTuneCommand:
    @pytest.mark.parametrize("algorithm", ["rs", "al", "ceal"])
    def test_tune_runs_and_reports(self, algorithm):
        out = io.StringIO()
        code = main(
            [
                "tune",
                "--workflow", "LV",
                "--objective", "execution_time",
                "--budget", "10",
                "--pool-size", "150",
                "--algorithm", algorithm,
                "--use-history",
                "--seed", "7",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "recommended configuration" in text
        assert "lammps.procs" in text
        assert "gap" in text


class TestReproduceCommand:
    def test_reproduce_table1(self):
        out = io.StringIO()
        code = main(["reproduce", "--target", "table1"], out=out)
        assert code == 0
        assert "Table 1" in out.getvalue()

    def test_reproduce_fig04(self):
        out = io.StringIO()
        code = main(
            ["reproduce", "--target", "fig04", "--seed", "7"], out=out
        )
        assert code == 0
        assert "Fig. 4" in out.getvalue()
