"""Tests for the command-line interface."""

import importlib.util
import io
import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_tune_defaults(self):
        args = build_parser().parse_args(["tune"])
        assert args.workflow == "LV"
        assert args.objective == "computer_time"
        assert args.budget == 50
        assert args.algorithm == "ceal"

    def test_reproduce_requires_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce"])

    def test_reproduce_jobs_flag(self):
        args = build_parser().parse_args(
            ["reproduce", "--target", "fig05", "--jobs", "auto"]
        )
        assert args.jobs == "auto"
        args = build_parser().parse_args(["reproduce", "--target", "fig05"])
        assert args.jobs is None

    def test_invalid_workflow_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--workflow", "XX"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_store_flags(self):
        args = build_parser().parse_args(
            ["tune", "--store", "runs.db", "--warm-start", "components"]
        )
        assert args.store == "runs.db"
        assert args.warm_start == "components"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--warm-start", "sideways"])

    def test_store_subcommand(self):
        args = build_parser().parse_args(["store", "stats", "runs.db"])
        assert args.action == "stats"
        assert args.path == "runs.db"
        args = build_parser().parse_args(
            ["store", "gc", "runs.db", "--keep-sessions", "2"]
        )
        assert args.keep_sessions == 2

    def test_suite_subcommand(self):
        args = build_parser().parse_args(
            [
                "suite", "run", "spec.toml",
                "--store", "runs.db",
                "--jobs", "auto",
                "--max-cells", "3",
                "--report", "out.json",
            ]
        )
        assert args.action == "run"
        assert args.spec == "spec.toml"
        assert args.store == "runs.db"
        assert args.jobs == "auto"
        assert args.max_cells == 3
        assert args.report_path == "out.json"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suite", "retry", "spec.toml"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suite", "run"])


class TestTuneCommand:
    @pytest.mark.parametrize("algorithm", ["rs", "al", "ceal"])
    def test_tune_runs_and_reports(self, algorithm):
        out = io.StringIO()
        code = main(
            [
                "tune",
                "--workflow", "LV",
                "--objective", "execution_time",
                "--budget", "10",
                "--pool-size", "150",
                "--algorithm", algorithm,
                "--use-history",
                "--seed", "7",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "recommended configuration" in text
        assert "lammps.procs" in text
        assert "gap" in text


class TestStoreWorkflow:
    """The two-session CLI story: record, then warm-start."""

    BASE = [
        "tune",
        "--workflow", "LV",
        "--objective", "execution_time",
        "--budget", "20",
        "--pool-size", "150",
        "--seed", "7",
    ]

    def test_record_then_warm_start(self, tmp_path):
        db = str(tmp_path / "runs.db")
        out = io.StringIO()
        assert main(self.BASE + ["--store", db], out=out) == 0
        assert f"store         : {db}" in out.getvalue()

        out = io.StringIO()
        code = main(
            self.BASE + ["--store", db, "--warm-start", "components"],
            out=out,
        )
        assert code == 0
        assert "warm start    : components (solo samples reused 20" in (
            out.getvalue()
        )

    def test_warm_start_requires_store(self):
        code = main(
            self.BASE + ["--warm-start", "components"], out=io.StringIO()
        )
        assert code == 2

    def test_store_stats_gc_export(self, tmp_path):
        db = str(tmp_path / "runs.db")
        assert main(self.BASE + ["--store", db], out=io.StringIO()) == 0

        out = io.StringIO()
        assert main(["store", "stats", db], out=out) == 0
        stats = json.loads(out.getvalue())
        assert stats["workflow_measurements"] > 0
        assert stats["component_measurements"] > 0

        out = io.StringIO()
        assert main(["store", "export", db], out=out) == 0
        dump = json.loads(out.getvalue())
        assert len(dump["measurements"]) == (
            stats["workflow_measurements"] + stats["component_measurements"]
        )

        out = io.StringIO()
        assert main(["store", "gc", db, "--keep-sessions", "0"], out=out) == 0
        deleted = json.loads(out.getvalue())
        assert deleted["measurements"] == len(dump["measurements"])

    def test_store_missing_file_errors(self, tmp_path):
        code = main(
            ["store", "stats", str(tmp_path / "nope.db")], out=io.StringIO()
        )
        assert code == 2


needs_toml = pytest.mark.skipif(
    importlib.util.find_spec("tomllib") is None
    and importlib.util.find_spec("tomli") is None,
    reason="no TOML parser on this Python (3.10 without tomli)",
)


class TestSuiteCommand:
    TOML_SPEC = str(
        Path(__file__).parent.parent / "examples" / "suites" / "smoke.toml"
    )

    # The committed smoke.toml as JSON (specs are format-agnostic), so
    # the CLI flow tests run on Python 3.10 where tomllib is missing.
    SMOKE = {
        "suite": {
            "name": "smoke", "repeats": 2, "pool_size": 150,
            "pool_seeds": [7],
        },
        "factors": {
            "workflows": ["LV"],
            "objectives": ["execution_time"],
            "budgets": [8],
        },
        "algorithms": [
            {"name": "RS", "kind": "rs"},
            {"name": "CEAL", "kind": "ceal", "params": {"use_history": True}},
        ],
    }

    @pytest.fixture()
    def spec_path(self, tmp_path):
        path = tmp_path / "smoke.json"
        path.write_text(json.dumps(self.SMOKE))
        return str(path)

    @needs_toml
    def test_committed_toml_example_runs(self, tmp_path):
        db = str(tmp_path / "suite.db")
        out = io.StringIO()
        code = main(["suite", "run", self.TOML_SPEC, "--store", db], out=out)
        assert code == 0
        assert json.loads(out.getvalue())["suite"] == "smoke"

    def test_run_then_resume_from_store(self, spec_path, tmp_path):
        db = str(tmp_path / "suite.db")
        report_path = tmp_path / "report.json"

        out = io.StringIO()
        code = main(
            [
                "suite", "run", spec_path,
                "--store", db,
                "--report", str(report_path),
            ],
            out=out,
        )
        assert code == 0
        report = json.loads(out.getvalue())
        assert report["schema_version"] == 1
        assert report["suite"] == "smoke"
        assert report["cells"] == 4
        assert json.loads(report_path.read_text()) == report

        # Everything cached now: resume re-reports identical bytes.
        out = io.StringIO()
        assert main(["suite", "resume", spec_path, "--store", db], out=out) == 0
        assert json.loads(out.getvalue()) == report

        out = io.StringIO()
        assert main(["suite", "report", spec_path, "--store", db], out=out) == 0
        assert json.loads(out.getvalue()) == report

    def test_partial_run_warns_then_completes(self, spec_path, tmp_path):
        db = str(tmp_path / "suite.db")
        out = io.StringIO()
        code = main(
            ["suite", "run", spec_path, "--store", db, "--max-cells", "1"],
            out=out,
        )
        assert code == 0
        assert out.getvalue() == ""  # incomplete → no report on stdout

        # 'report' refuses while cells are pending...
        assert main(
            ["suite", "report", spec_path, "--store", db], out=io.StringIO()
        ) == 2
        # ...and 'resume' finishes the matrix.
        out = io.StringIO()
        assert main(["suite", "resume", spec_path, "--store", db], out=out) == 0
        assert json.loads(out.getvalue())["cells"] == 4

    def test_resume_and_report_require_store(self):
        # Store validation precedes spec loading, so a dummy path is fine.
        assert main(["suite", "resume", "spec.toml"], out=io.StringIO()) == 2
        assert main(["suite", "report", "spec.toml"], out=io.StringIO()) == 2

    def test_report_requires_existing_store(self, tmp_path):
        code = main(
            ["suite", "report", "spec.toml", "--store", str(tmp_path / "no.db")],
            out=io.StringIO(),
        )
        assert code == 2

    def test_record_measurements_requires_store(self):
        code = main(
            ["suite", "run", "spec.toml", "--record-measurements"],
            out=io.StringIO(),
        )
        assert code == 2

    def test_bad_spec_path_errors(self, tmp_path):
        code = main(
            ["suite", "run", str(tmp_path / "missing.toml")],
            out=io.StringIO(),
        )
        assert code == 2


class TestReproduceCommand:
    def test_reproduce_table1(self):
        out = io.StringIO()
        code = main(["reproduce", "--target", "table1"], out=out)
        assert code == 0
        assert "Table 1" in out.getvalue()

    def test_reproduce_fig04(self):
        out = io.StringIO()
        code = main(
            ["reproduce", "--target", "fig04", "--seed", "7"], out=out
        )
        assert code == 0
        assert "Fig. 4" in out.getvalue()
