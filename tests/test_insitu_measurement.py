"""Tests for workflow measurement (objectives, noise, determinism)."""

import numpy as np
import pytest

from repro.insitu.measurement import measure_workflow, stable_seed
from repro.workflows.catalog import expert_config


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", (1, 2)) == stable_seed("a", (1, 2))

    def test_distinct_inputs_distinct_seeds(self):
        assert stable_seed("a") != stable_seed("b")

    def test_64_bit_range(self):
        s = stable_seed("x", 123)
        assert 0 <= s < 2**64


class TestMeasurement:
    def test_computer_time_definition(self, lv):
        m = measure_workflow(lv, expert_config("LV", "execution_time"), noise_sigma=0)
        expected = m.execution_seconds * m.nodes * lv.machine.node.cores / 3600.0
        assert m.computer_core_hours == pytest.approx(expected)

    def test_objective_accessor(self, lv):
        m = measure_workflow(lv, expert_config("LV", "execution_time"), noise_sigma=0)
        assert m.objective("execution_time") == m.execution_seconds
        assert m.objective("computer_time") == m.computer_core_hours
        with pytest.raises(ValueError):
            m.objective("latency")

    def test_noise_deterministic_per_seed(self, lv):
        config = expert_config("LV", "execution_time")
        a = measure_workflow(lv, config, noise_sigma=0.05, noise_seed=1)
        b = measure_workflow(lv, config, noise_sigma=0.05, noise_seed=1)
        c = measure_workflow(lv, config, noise_sigma=0.05, noise_seed=2)
        assert a.execution_seconds == b.execution_seconds
        assert a.execution_seconds != c.execution_seconds

    def test_noise_centered_on_truth(self, lv):
        config = expert_config("LV", "execution_time")
        clean = measure_workflow(lv, config, noise_sigma=0)
        noisy = [
            measure_workflow(lv, config, noise_sigma=0.05, noise_seed=s)
            for s in range(60)
        ]
        mean = np.mean([m.execution_seconds for m in noisy])
        assert mean == pytest.approx(clean.execution_seconds, rel=0.05)

    def test_noise_scales_components_consistently(self, lv):
        config = expert_config("LV", "execution_time")
        m = measure_workflow(lv, config, noise_sigma=0.05, noise_seed=3)
        assert m.execution_seconds == pytest.approx(
            max(m.component_seconds.values())
        )

    def test_execution_longest_component(self, lv):
        m = measure_workflow(lv, expert_config("LV", "execution_time"), noise_sigma=0)
        assert m.execution_seconds == max(m.component_seconds.values())


class TestConfigCanonicalForm:
    """``WorkflowMeasurement.config`` is always the canonical plain tuple."""

    def test_list_config_stored_as_tuple(self, lv):
        config = expert_config("LV", "execution_time")
        m = measure_workflow(lv, list(config), noise_sigma=0)
        assert type(m.config) is tuple
        assert m.config == config

    def test_round_trips_through_measurement_store(self, lv, tmp_path):
        from repro.store.db import MeasurementStore, StoreBinding
        from repro.store.signatures import space_signature

        config = expert_config("LV", "execution_time")
        m = measure_workflow(lv, list(config), noise_sigma=0.05, noise_seed=4)
        store = MeasurementStore(tmp_path / "measurements.sqlite")
        binding = StoreBinding(store, lv, "execution_time", seed=0)
        assert binding.record_workflow([(m.config, m)]) == 1

        rows = store.query(space_sig=space_signature(lv.space)).records
        assert len(rows) == 1
        assert type(rows[0].config) is tuple
        assert rows[0].config == m.config
        assert rows[0].value == m.execution_seconds
