"""Kill-and-resume determinism: resumed sessions finish bit-identically.

A session interrupted after any number of measurement cycles
(``max_cycles``) and resumed from its checkpoint must produce the same
:class:`~repro.core.problem.AutotuneResult` as an uninterrupted run —
same measured configurations in the same order, same recommendation,
same event log in every deterministic field (``fit_seconds`` is
wall-clock and excluded from the comparison).
"""

import pytest

from repro.core.algorithms import ActiveLearning, RandomSampling
from repro.core.autotuner import AutoTuner
from repro.core.ceal import Ceal, CealSettings
from repro.core.driver import load_checkpoint
from repro.core.objectives import EXECUTION_TIME
from repro.core.problem import TuningProblem


def make_problem(lv, lv_pool, lv_histories, budget=20, **kwargs):
    return TuningProblem.create(
        workflow=lv,
        objective=EXECUTION_TIME,
        pool=lv_pool,
        budget_runs=budget,
        seed=3,
        histories=lv_histories,
        **kwargs,
    )


def comparable(result):
    """Everything deterministic about a result (timing excluded)."""
    return {
        "algorithm": result.algorithm,
        "measured": list(result.measured.items()),
        "runs_used": result.runs_used,
        "cost_execution_seconds": result.cost_execution_seconds,
        "cost_core_hours": result.cost_core_hours,
        "events": [e.as_dict(include_timing=False) for e in result.trace],
    }


def run_interrupted(algorithm_factory, problem_factory, path, interrupt_after):
    """Run to ``interrupt_after`` cycles, drop everything, resume fresh."""
    paused = algorithm_factory().tune(
        problem_factory(), checkpoint_path=path, max_cycles=interrupt_after
    )
    assert paused is None, "session should have been interrupted mid-run"
    # Fresh algorithm + fresh problem: nothing survives but the file.
    return algorithm_factory().tune(
        problem_factory(), checkpoint_path=path, resume=True
    )


class TestResumeDeterminism:
    @pytest.mark.parametrize("interrupt_after", [1, 3])
    def test_ceal_with_history(
        self, lv, lv_pool, lv_histories, tmp_path, interrupt_after
    ):
        algo = lambda: Ceal(CealSettings(use_history=True))
        prob = lambda: make_problem(lv, lv_pool, lv_histories, budget=20)
        straight = algo().tune(prob())
        resumed = run_interrupted(
            algo, prob, tmp_path / "ceal.ckpt", interrupt_after
        )
        assert comparable(resumed) == comparable(straight)
        assert resumed.best_config(lv_pool) == straight.best_config(lv_pool)

    def test_ceal_paid_components(self, lv, lv_pool, lv_histories, tmp_path):
        algo = lambda: Ceal(CealSettings(use_history=False))
        prob = lambda: make_problem(lv, lv_pool, lv_histories, budget=20)
        straight = algo().tune(prob())
        resumed = run_interrupted(algo, prob, tmp_path / "ceal.ckpt", 2)
        assert comparable(resumed) == comparable(straight)
        assert resumed.best_config(lv_pool) == straight.best_config(lv_pool)

    def test_ceal_under_fault_injection(
        self, lv, lv_pool, lv_histories, tmp_path
    ):
        algo = lambda: Ceal(CealSettings(use_history=True))
        prob = lambda: make_problem(
            lv, lv_pool, lv_histories, budget=24, failure_rate=0.3
        )
        straight = algo().tune(prob())
        resumed = run_interrupted(algo, prob, tmp_path / "ceal.ckpt", 2)
        assert comparable(resumed) == comparable(straight)
        assert resumed.best_config(lv_pool) == straight.best_config(lv_pool)

    def test_active_learning_baseline(self, lv, lv_pool, lv_histories, tmp_path):
        algo = lambda: ActiveLearning(iterations=3)
        prob = lambda: make_problem(lv, lv_pool, lv_histories, budget=16)
        straight = algo().tune(prob())
        resumed = run_interrupted(algo, prob, tmp_path / "al.ckpt", 2)
        assert comparable(resumed) == comparable(straight)
        assert resumed.best_config(lv_pool) == straight.best_config(lv_pool)

    def test_random_sampling_baseline(self, lv, lv_pool, lv_histories, tmp_path):
        algo = lambda: RandomSampling()
        prob = lambda: make_problem(lv, lv_pool, lv_histories, budget=16)
        straight = algo().tune(prob())
        resumed = run_interrupted(algo, prob, tmp_path / "rs.ckpt", 1)
        assert comparable(resumed) == comparable(straight)
        assert resumed.best_config(lv_pool) == straight.best_config(lv_pool)

    def test_completed_flag_set_after_finish(
        self, lv, lv_pool, lv_histories, tmp_path
    ):
        path = tmp_path / "done.ckpt"
        Ceal(CealSettings(use_history=True)).tune(
            make_problem(lv, lv_pool, lv_histories), checkpoint_path=path
        )
        assert load_checkpoint(path)["completed"] is True

    def test_resume_across_multiple_interruptions(
        self, lv, lv_pool, lv_histories, tmp_path
    ):
        """Pause after every single cycle until the session finishes."""
        path = tmp_path / "stepwise.ckpt"
        algo = lambda: Ceal(CealSettings(use_history=True))
        prob = lambda: make_problem(lv, lv_pool, lv_histories, budget=20)
        straight = algo().tune(prob())
        result = algo().tune(prob(), checkpoint_path=path, max_cycles=1)
        hops = 0
        while result is None:
            hops += 1
            assert hops < 50, "resume loop did not converge"
            result = algo().tune(
                prob(), checkpoint_path=path, resume=True, max_cycles=1
            )
        assert hops > 1
        assert comparable(result) == comparable(straight)
        assert result.best_config(lv_pool) == straight.best_config(lv_pool)


class TestCheckpointWithStore:
    """``--resume`` + ``--store`` never double-records (DESIGN §10)."""

    def test_interrupted_and_resumed_run_records_once(
        self, lv, lv_pool, lv_histories, tmp_path
    ):
        from repro.store import MeasurementStore

        algo = lambda: Ceal(CealSettings(use_history=False))
        straight_db = tmp_path / "straight.db"
        resumed_db = tmp_path / "resumed.db"
        straight = algo().tune(
            make_problem(lv, lv_pool, lv_histories, store=straight_db)
        )
        resumed = run_interrupted(
            algo,
            lambda: make_problem(lv, lv_pool, lv_histories, store=resumed_db),
            tmp_path / "store.ckpt",
            2,
        )
        assert comparable(resumed) == comparable(straight)

        with_straight = MeasurementStore(straight_db)
        with_resumed = MeasurementStore(resumed_db)
        a, b = with_straight.export(), with_resumed.export()
        # Same measurement rows, once each — the interruption did not
        # drop or duplicate anything (row-key dedupe + per-batch
        # transactions).
        strip = lambda rows: [
            {
                k: r[k]
                for k in ("context_id", "config", "value", "seed", "repeat")
            }
            for r in rows
        ]
        assert strip(a["measurements"]) == strip(b["measurements"])
        # The resumed run kept recording under the session it started
        # as: the collector round-trips the store session id.
        sessions = {r["session"] for r in b["measurements"]}
        assert len(sessions) == 1
        with_straight.close()
        with_resumed.close()

    def test_collector_state_dict_round_trips_store_session(
        self, lv, lv_pool, lv_histories, tmp_path
    ):
        problem = make_problem(
            lv, lv_pool, lv_histories, store=tmp_path / "s.db"
        )
        state = problem.collector.state_dict()
        assert state["store_session"] == problem.store.session
        fresh = make_problem(
            lv, lv_pool, lv_histories, store=tmp_path / "s.db"
        )
        assert fresh.store.session != problem.store.session
        fresh.collector.restore_state(state)
        assert fresh.store.session == problem.store.session

    def test_storeless_checkpoint_still_restores(
        self, lv, lv_pool, lv_histories, tmp_path
    ):
        # A checkpoint written without a store binds cleanly into a
        # storeless problem (store_session is None) — and vice versa a
        # store-bound collector tolerates a legacy state dict.
        problem = make_problem(lv, lv_pool, lv_histories)
        state = problem.collector.state_dict()
        assert state["store_session"] is None
        bound = make_problem(
            lv, lv_pool, lv_histories, store=tmp_path / "s.db"
        )
        session = bound.store.session
        bound.collector.restore_state(state)
        assert bound.store.session == session  # unchanged


class TestAtomicCheckpoint:
    """A crash mid-save must never corrupt the previous checkpoint.

    ``save_checkpoint`` stages into a unique temp file and publishes
    with ``os.replace``; a failure at either step (serialisation dies
    half-way, or the rename itself) leaves the previous checkpoint
    byte-identical, loadable, and the directory free of temp litter.
    """

    def _checkpointed(self, lv, lv_pool, lv_histories, tmp_path):
        path = tmp_path / "atomic.ckpt"
        Ceal(CealSettings(use_history=True)).tune(
            make_problem(lv, lv_pool, lv_histories, budget=20),
            checkpoint_path=path,
            max_cycles=1,
        )
        problem = make_problem(lv, lv_pool, lv_histories, budget=20)
        strategy = Ceal(CealSettings(use_history=True)).make_strategy()
        from repro.core.driver import TuningSession

        session = TuningSession.start(problem)
        strategy.prepare(session)  # a saveable state, as in the driver
        return path, session, strategy

    def test_torn_serialisation_keeps_previous_checkpoint(
        self, lv, lv_pool, lv_histories, tmp_path, monkeypatch
    ):
        import pickle as real_pickle

        from repro.core.driver import save_checkpoint

        path, session, strategy = self._checkpointed(
            lv, lv_pool, lv_histories, tmp_path
        )
        before = path.read_bytes()

        def torn_dump(obj, handle, protocol=None):
            handle.write(real_pickle.dumps(obj)[:10])  # partial write...
            raise OSError("disk full")  # ...then the crash

        monkeypatch.setattr("repro.core.driver.pickle.dump", torn_dump)
        with pytest.raises(OSError):
            save_checkpoint(path, session, strategy, False)
        assert path.read_bytes() == before
        assert list(tmp_path.glob("*.tmp")) == []
        assert load_checkpoint(path)["version"] >= 1

    def test_failed_publish_keeps_previous_checkpoint(
        self, lv, lv_pool, lv_histories, tmp_path, monkeypatch
    ):
        from repro.core.driver import save_checkpoint

        path, session, strategy = self._checkpointed(
            lv, lv_pool, lv_histories, tmp_path
        )
        before = path.read_bytes()

        def failing_replace(src, dst):
            raise OSError("rename interrupted")

        monkeypatch.setattr("repro.core.driver.os.replace", failing_replace)
        with pytest.raises(OSError):
            save_checkpoint(path, session, strategy, False)
        monkeypatch.undo()
        assert path.read_bytes() == before
        assert list(tmp_path.glob("*.tmp")) == []
        # The surviving checkpoint still resumes to the straight result.
        algo = lambda: Ceal(CealSettings(use_history=True))
        prob = lambda: make_problem(lv, lv_pool, lv_histories, budget=20)
        straight = algo().tune(prob())
        resumed = algo().tune(prob(), checkpoint_path=path, resume=True)
        assert comparable(resumed) == comparable(straight)


class TestAutoTunerCheckpoint:
    def test_facade_passthrough(self, lv, tmp_path):
        path = tmp_path / "facade.ckpt"
        kwargs = dict(
            workflow=lv,
            objective="execution_time",
            budget=16,
            pool_size=80,
            use_history=True,
            seed=5,
        )
        straight = AutoTuner(**kwargs).tune()
        checkpointed = AutoTuner(**kwargs, checkpoint_path=str(path)).tune()
        assert checkpointed.best_config == straight.best_config
        assert load_checkpoint(path)["completed"] is True
