"""Unit tests for the random forest."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import rmse


@pytest.fixture()
def data():
    rng = np.random.default_rng(3)
    X = rng.uniform(0, 5, size=(150, 3))
    y = X[:, 0] ** 2 + 3 * X[:, 1] + rng.normal(0, 0.1, 150)
    return X, y


def test_learns_signal(data):
    X, y = data
    model = RandomForestRegressor(n_estimators=40, random_state=0).fit(X, y)
    assert rmse(y, model.predict(X)) < 0.5 * np.std(y)


def test_deterministic_given_seed(data):
    X, y = data
    a = RandomForestRegressor(n_estimators=10, random_state=5).fit(X, y)
    b = RandomForestRegressor(n_estimators=10, random_state=5).fit(X, y)
    np.testing.assert_array_equal(a.predict(X), b.predict(X))


def test_prediction_within_target_range(data):
    X, y = data
    model = RandomForestRegressor(n_estimators=20, random_state=0).fit(X, y)
    pred = model.predict(X)
    assert pred.min() >= y.min() - 1e-9 and pred.max() <= y.max() + 1e-9


def test_predict_before_fit():
    with pytest.raises(RuntimeError):
        RandomForestRegressor().predict(np.ones((1, 2)))


def test_feature_mismatch(data):
    X, y = data
    model = RandomForestRegressor(n_estimators=5, random_state=0).fit(X, y)
    with pytest.raises(ValueError):
        model.predict(np.ones((2, 5)))


def test_invalid_estimators():
    with pytest.raises(ValueError):
        RandomForestRegressor(n_estimators=0)


def test_max_features_default_third(data):
    X, y = data
    model = RandomForestRegressor(n_estimators=5, random_state=0)
    model.fit(X, y)  # just exercises the ceil(d/3) path on d=3 -> 1
    assert model.predict(X).shape == y.shape
