"""Tests for the §7.2 evaluation metrics."""

import numpy as np
import pytest

from repro.core.metrics import (
    least_number_of_uses,
    mdape_on_top_fraction,
    recall_curve,
    recall_score,
)


class TestRecallScore:
    def test_perfect_model(self):
        truth = np.array([3.0, 1.0, 2.0, 5.0, 4.0])
        assert recall_score(truth, truth, 1) == 100.0
        assert recall_score(truth, truth, 3) == 100.0

    def test_anti_model(self):
        truth = np.arange(10.0)
        assert recall_score(-truth, truth, 3) == 0.0

    def test_partial(self):
        truth = np.array([1.0, 2.0, 3.0, 4.0])
        model = np.array([1.0, 4.0, 2.0, 3.0])
        # model top-2 {0,2}; truth top-2 {0,1} -> 50%
        assert recall_score(model, truth, 2) == 50.0

    def test_curve_shape(self):
        truth = np.arange(20.0)
        curve = recall_curve(truth, truth, 9)
        assert curve.shape == (9,)
        assert (curve == 100.0).all()

    def test_curve_invalid_n(self):
        with pytest.raises(ValueError):
            recall_curve(np.ones(3), np.ones(3), 0)


class TestMdapeTopFraction:
    def test_all_matches_plain_mdape(self):
        truth = np.array([10.0, 20.0, 40.0])
        pred = np.array([11.0, 22.0, 44.0])
        assert mdape_on_top_fraction(pred, truth, None) == pytest.approx(10.0)

    def test_top_fraction_selects_best_configs(self):
        truth = np.array([1.0, 2.0, 100.0, 200.0])
        pred = np.array([1.1, 2.2, 200.0, 400.0])  # 10% on top, 100% on rest
        top_half = mdape_on_top_fraction(pred, truth, 0.5)
        assert top_half == pytest.approx(10.0)
        overall = mdape_on_top_fraction(pred, truth, None)
        assert overall > top_half

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            mdape_on_top_fraction(np.ones(3), np.ones(3), 1.5)

    def test_misaligned(self):
        with pytest.raises(ValueError):
            mdape_on_top_fraction(np.ones(3), np.ones(4), None)


class TestPracticality:
    def test_basic_ratio(self):
        # cost 100, improves 28.0 -> 24.6 per run
        assert least_number_of_uses(100.0, 24.6, 28.0) == pytest.approx(
            100.0 / 3.4
        )

    def test_no_improvement_is_infinite(self):
        assert least_number_of_uses(10.0, 5.0, 5.0) == float("inf")
        assert least_number_of_uses(10.0, 6.0, 5.0) == float("inf")

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            least_number_of_uses(-1.0, 1.0, 2.0)
