"""Tests for run tracing and the terminal figure renderers."""

import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.viz import render_bars, render_figure, render_series
from repro.insitu import RunTracer, run_coupled
from repro.insitu.tracing import TraceEvent
from repro.workflows.catalog import expert_config


class TestTraceEvent:
    def test_duration(self):
        e = TraceEvent("sim", "compute", 0, 1.0, 3.5)
        assert e.duration == 2.5

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            TraceEvent("sim", "think", 0, 0.0, 1.0)

    def test_backwards_interval(self):
        with pytest.raises(ValueError):
            TraceEvent("sim", "compute", 0, 2.0, 1.0)


class TestRunTracer:
    def test_tracing_does_not_change_results(self, lv):
        config = expert_config("LV", "execution_time")
        plain = run_coupled(lv, config)
        tracer = RunTracer()
        traced = run_coupled(lv, config, tracer=tracer)
        assert traced.execution_seconds == plain.execution_seconds
        assert traced.component_seconds == plain.component_seconds
        assert tracer.events

    def test_timeline_covers_all_steps(self, lv):
        config = expert_config("LV", "execution_time")
        tracer = RunTracer()
        run_coupled(lv, config, tracer=tracer)
        computes = tracer.of("lammps", "compute")
        assert len(computes) == 20  # one per step
        assert [e.step for e in computes] == list(range(20))

    def test_blocked_seconds_matches_stalls(self, lv):
        config = expert_config("LV", "execution_time")
        tracer = RunTracer()
        result = run_coupled(lv, config, tracer=tracer)
        for label in lv.labels:
            assert tracer.blocked_seconds(label) == pytest.approx(
                result.stall_seconds(label), abs=1e-6
            )

    def test_summary_and_timeline_sorted(self, lv):
        config = expert_config("LV", "computer_time")
        tracer = RunTracer()
        run_coupled(lv, config, tracer=tracer)
        summary = tracer.summary()
        assert set(summary) == set(lv.labels)
        timeline = tracer.timeline("voro")
        starts = [e.start for e in timeline]
        assert starts == sorted(starts)


class TestViz:
    def test_render_bars_basic(self):
        rows = [
            {"algorithm": "RS", "normalized": 1.4},
            {"algorithm": "CEAL", "normalized": 1.0},
        ]
        text = render_bars(rows, ("algorithm",), "normalized", baseline=1.0)
        lines = text.splitlines()
        assert len(lines) == 2
        assert "RS" in lines[0] and "CEAL" in lines[1]
        # RS bar longer than CEAL's.
        assert lines[0].count("█") > lines[1].count("█")

    def test_render_bars_handles_inf(self):
        rows = [{"a": "x", "v": float("inf")}, {"a": "y", "v": 2.0}]
        text = render_bars(rows, ("a",), "v")
        assert "(inf)" in text

    def test_render_bars_empty(self):
        assert render_bars([], ("a",), "v") == "(no rows)"

    def test_render_series_grid(self):
        rows = [
            {"algorithm": algo, "top_n": n, "recall_pct": pct}
            for algo, base in (("CEAL", 80), ("RS", 10))
            for n, pct in ((1, base), (2, base + 5), (3, base + 10))
        ]
        text = render_series(rows, "algorithm", "top_n", "recall_pct", y_max=100)
        assert "A=CEAL" in text and "B=RS" in text
        assert "|" in text

    def test_render_figure_dispatch(self):
        recall = FigureResult("Fig. X", "recall", [
            {"algorithm": "CEAL", "top_n": 1, "recall_pct": 50.0},
            {"algorithm": "RS", "top_n": 1, "recall_pct": 5.0},
        ])
        assert "A=CEAL" in render_figure(recall)
        bars = FigureResult("Fig. Y", "bars", [
            {"workflow": "LV", "algorithm": "RS", "normalized": 1.2},
        ])
        assert "█" in render_figure(bars)
        table = FigureResult("Fig. Z", "plain", [{"x": 1}])
        assert "Fig. Z" in render_figure(table)
