"""Unit tests for gradient boosting."""

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostedTrees
from repro.ml.metrics import rmse


@pytest.fixture()
def rng():
    return np.random.default_rng(1)


@pytest.fixture()
def data(rng):
    X = rng.uniform(0, 10, size=(200, 4))
    y = 2.0 * X[:, 0] + np.sin(X[:, 1]) + 0.5 * X[:, 2] * X[:, 3] / 10 + 5.0
    return X, y


class TestFit:
    def test_reduces_training_error_with_rounds(self, data):
        X, y = data
        few = GradientBoostedTrees(n_estimators=5, random_state=0).fit(X, y)
        many = GradientBoostedTrees(n_estimators=100, random_state=0).fit(X, y)
        assert rmse(y, many.predict(X)) < rmse(y, few.predict(X))

    def test_beats_mean_baseline(self, data):
        X, y = data
        model = GradientBoostedTrees(n_estimators=80, random_state=0).fit(X, y)
        assert rmse(y, model.predict(X)) < 0.5 * np.std(y)

    def test_constant_target(self, rng):
        X = rng.uniform(size=(50, 3))
        y = np.full(50, 3.5)
        model = GradientBoostedTrees(n_estimators=10).fit(X, y)
        np.testing.assert_allclose(model.predict(X), 3.5, rtol=1e-9)

    def test_log_target_positive_predictions(self, rng):
        X = rng.uniform(size=(100, 3))
        y = np.exp(rng.normal(size=100))  # positive, heavy tailed
        model = GradientBoostedTrees(
            n_estimators=40, log_target=True, random_state=0
        ).fit(X, y)
        assert (model.predict(X) > 0).all()

    def test_log_target_rejects_nonpositive(self, rng):
        X = rng.uniform(size=(10, 2))
        y = np.linspace(-1, 1, 10)
        with pytest.raises(ValueError, match="positive"):
            GradientBoostedTrees(log_target=True).fit(X, y)

    def test_deterministic_given_seed(self, data):
        X, y = data
        a = GradientBoostedTrees(subsample=0.7, random_state=9).fit(X, y)
        b = GradientBoostedTrees(subsample=0.7, random_state=9).fit(X, y)
        np.testing.assert_array_equal(a.predict(X), b.predict(X))

    def test_subsample_seeds_differ(self, data):
        X, y = data
        a = GradientBoostedTrees(subsample=0.5, random_state=1).fit(X, y)
        b = GradientBoostedTrees(subsample=0.5, random_state=2).fit(X, y)
        assert not np.array_equal(a.predict(X), b.predict(X))

    def test_colsample(self, data):
        X, y = data
        model = GradientBoostedTrees(
            n_estimators=30, colsample=0.5, random_state=0
        ).fit(X, y)
        assert rmse(y, model.predict(X)) < np.std(y)

    def test_refit_resets_state(self, data):
        X, y = data
        model = GradientBoostedTrees(n_estimators=20, random_state=0)
        model.fit(X, y)
        first = model.predict(X)
        model.fit(X, y)  # refit from scratch
        np.testing.assert_array_equal(first, model.predict(X))

    def test_two_samples_minimum(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([1.0, 2.0])
        model = GradientBoostedTrees(n_estimators=5, min_samples_leaf=1).fit(X, y)
        assert model.predict(X).shape == (2,)


class TestValidation:
    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(subsample=1.5)
        with pytest.raises(ValueError):
            GradientBoostedTrees(colsample=0.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().predict(np.ones((1, 2)))

    def test_feature_count_mismatch(self, data):
        X, y = data
        model = GradientBoostedTrees(n_estimators=5).fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(np.ones((3, 2)))

    def test_misaligned_y(self, rng):
        with pytest.raises(ValueError):
            GradientBoostedTrees().fit(rng.uniform(size=(10, 2)), np.ones(9))

    def test_clone_is_unfitted_copy(self, data):
        X, y = data
        model = GradientBoostedTrees(n_estimators=7, learning_rate=0.3)
        model.fit(X, y)
        clone = model.clone()
        assert clone.n_estimators == 7
        assert clone.learning_rate == 0.3
        with pytest.raises(RuntimeError):
            clone.predict(X)
