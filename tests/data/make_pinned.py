"""Regenerate the pinned tune-result fixtures (tests/data/pinned_tune.json).

The pins were captured from the pre-driver monolithic ``tune()``
implementations; the driver-based strategies must reproduce them
bit-identically (same measured configurations in the same order, same
recommendation).  Re-run only when an *intentional* behaviour change is
made, and say so in the commit message::

    PYTHONPATH=src python tests/data/make_pinned.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.algorithms import (
    ActiveLearning,
    Alph,
    BayesianOptimization,
    Geist,
    LowFidelityOnly,
    RandomSampling,
    RegionBandit,
)
from repro.core.ceal import Ceal, CealSettings
from repro.core.objectives import EXECUTION_TIME
from repro.core.problem import TuningProblem
from repro.workflows.catalog import make_lv
from repro.workflows.pools import generate_component_history, generate_pool

POOL_SIZE = 150
POOL_SEED = 7
HISTORY_SIZE = 120


def cases():
    return [
        ("rs", RandomSampling(), 16, 0.0),
        ("al", ActiveLearning(iterations=3), 16, 0.0),
        ("geist", Geist(iterations=3), 16, 0.0),
        ("alph_hist", Alph(use_history=True, iterations=3), 16, 0.0),
        (
            "alph_paid",
            Alph(use_history=False, component_runs_fraction=0.5, iterations=2),
            16,
            0.0,
        ),
        ("bandit", RegionBandit(), 16, 0.0),
        ("bo", BayesianOptimization(iterations=3), 16, 0.0),
        ("ceal_bo", BayesianOptimization(iterations=3, bootstrap=True), 16, 0.0),
        ("lowfid", LowFidelityOnly(), 16, 0.0),
        ("ceal_hist", Ceal(CealSettings(use_history=True)), 20, 0.0),
        ("ceal_paid", Ceal(CealSettings(use_history=False)), 20, 0.0),
        ("ceal_faults", Ceal(CealSettings(use_history=True)), 24, 0.3),
    ]


def main() -> None:
    lv = make_lv()
    pool = generate_pool(lv, POOL_SIZE, seed=POOL_SEED)
    histories = {
        label: generate_component_history(lv, label, size=HISTORY_SIZE, seed=POOL_SEED)
        for label in lv.labels
    }
    pinned = {}
    for key, algorithm, budget, failure_rate in cases():
        problem = TuningProblem.create(
            workflow=lv,
            objective=EXECUTION_TIME,
            pool=pool,
            budget_runs=budget,
            seed=3,
            histories=histories,
            failure_rate=failure_rate,
        )
        result = algorithm.tune(problem)
        pinned[key] = {
            "algorithm": result.algorithm,
            "budget": budget,
            "failure_rate": failure_rate,
            "runs_used": result.runs_used,
            "measured_configs": [list(c) for c in result.measured],
            "measured_values": list(result.measured.values()),
            "recommendation": list(result.best_config(pool)),
        }
        print(f"{key:12s} runs={result.runs_used:3d} "
              f"measured={len(result.measured):3d}")

    path = Path(__file__).with_name("pinned_tune.json")
    path.write_text(json.dumps(pinned, indent=1, sort_keys=True))
    roundtrip = json.loads(path.read_text())
    for key, row in pinned.items():
        assert roundtrip[key] == json.loads(json.dumps(row)), key
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
