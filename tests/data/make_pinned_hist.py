"""Regenerate the pinned hist-builder fixture (pinned_hist.json).

``method="hist"`` trees intentionally differ from exact trees (splits
are restricted to quantile cuts), so they get their own pinned outputs:
a deterministic synthetic fit, its predictions on held-out rows, and
structural facts about the grown trees.  Re-run only for an
*intentional* behaviour change, and say so in the commit message::

    PYTHONPATH=src python tests/data/make_pinned_hist.py
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.ml.boosting import GradientBoostedTrees


def make_data():
    rng = np.random.default_rng(11)
    n, d = 300, 6
    X = rng.normal(size=(n, d))
    X[:, 1] = rng.integers(0, 4, size=n)  # discrete feature
    X[:, 4] = np.round(X[:, 4], 1)  # heavy ties
    y = (
        5.0
        + 2.0 * np.abs(X[:, 0])
        + X[:, 1] * 1.5
        + np.exp(0.3 * X[:, 2])
        + 0.2 * rng.normal(size=n) ** 2
    )
    X_test = rng.normal(size=(25, d))
    X_test[:, 1] = rng.integers(0, 4, size=25)
    X_test[:, 4] = np.round(X_test[:, 4], 1)
    return X, y, X_test


def make_model() -> GradientBoostedTrees:
    return GradientBoostedTrees(
        n_estimators=40,
        learning_rate=0.1,
        max_depth=4,
        min_samples_leaf=2,
        subsample=0.9,
        colsample=0.8,
        log_target=True,
        random_state=5,
        method="hist",
        max_bins=16,
    )


def main() -> None:
    X, y, X_test = make_data()
    model = make_model().fit(X, y)
    preds = model.predict(X_test)
    pinned = {
        "predictions": list(preds),
        "n_nodes": [int(t.n_nodes) for t in model._trees],
        "depths": [int(t.depth) for t in model._trees],
        "base_score": model._base_score,
    }
    path = Path(__file__).with_name("pinned_hist.json")
    path.write_text(json.dumps(pinned, indent=1, sort_keys=True))
    roundtrip = json.loads(path.read_text())
    assert roundtrip["predictions"] == pinned["predictions"]
    print(f"wrote {path}: preds[:3]={[f'{p:.6g}' for p in preds[:3]]}")


if __name__ == "__main__":
    main()
