"""Regenerate ``pinned_suite.json`` — legacy figure outputs at test scale.

The suite-engine refactor routes every figure driver through
``repro.experiments.suite``; these pins capture the *pre-refactor*
outputs (direct ``run_trials`` / ``sweep_ceal`` execution) of the
cheap drivers at test scale, so ``tests/test_suite.py`` can assert the
rebased drivers reproduce them bit-identically.

Regenerate with ``PYTHONPATH=src python tests/data/make_pinned_suite.py``
only for an *intentional* behaviour change.
"""

import json
from pathlib import Path

from repro.core.algorithms import RandomSampling
from repro.core.ceal import Ceal, CealSettings
from repro.experiments.figures import fig08_practicality
from repro.experiments.headline import headline_claims
from repro.experiments.runner import AlgorithmSpec, run_trials
from repro.experiments.sensitivity import sweep_ceal

OUT = Path(__file__).parent / "pinned_suite.json"

REPEATS = 2
POOL = 150
SEED = 7


def trial_rows():
    """Deterministic fields of a small generic ``run_trials`` batch."""
    specs = (
        AlgorithmSpec("RS", RandomSampling),
        AlgorithmSpec("CEAL", lambda: Ceal(CealSettings(use_history=True))),
    )
    trials = run_trials(
        "LV", "execution_time", specs, budget=8, repeats=REPEATS,
        pool_size=POOL, pool_seed=SEED,
    )
    return [
        {
            "algorithm": t.algorithm,
            "workflow": t.workflow,
            "objective": t.objective,
            "budget": t.budget,
            "seed": t.seed,
            "repeat": t.repeat,
            "best_value": t.best_value,
            "normalized": t.normalized,
            "recall": [float(x) for x in t.recall],
            "mdape_all": t.mdape_all,
            "mdape_top2": t.mdape_top2,
            "cost": t.cost,
            "runs_used": t.runs_used,
        }
        for t in trials
    ]


def sweep_rows():
    settings = [
        ("I=2", CealSettings(use_history=False, iterations=2)),
        ("I=4 (hist)", CealSettings(use_history=True, iterations=4)),
    ]
    return sweep_ceal(
        settings, workflow_name="LV", objective_name="computer_time",
        budget=10, repeats=REPEATS, pool_size=POOL, seed=SEED,
    )


def main() -> None:
    payload = {
        "repeats": REPEATS,
        "pool_size": POOL,
        "seed": SEED,
        "run_trials": trial_rows(),
        "headline": headline_claims(
            repeats=REPEATS, pool_size=POOL, seed=SEED
        ).rows,
        "fig08": fig08_practicality(
            repeats=REPEATS, pool_size=POOL, seed=SEED
        ).rows,
        "sweep": sweep_rows(),
    }
    OUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
