"""Regenerate the pinned final-model pool scores (pinned_scores.json).

``pinned_tune.json`` pins the measured trajectories; this fixture pins
the *final searcher model's* scores over the whole pool for the same
cases, captured from the pre-fast-kernel ML implementations.  The
vectorized kernels (presorted tree growth, packed-ensemble prediction,
pool-score caching) must reproduce every score bit-for-bit.

Re-run only for an *intentional* behaviour change, and say so in the
commit message::

    PYTHONPATH=src python tests/data/make_pinned_scores.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.objectives import EXECUTION_TIME
from repro.core.problem import TuningProblem
from repro.workflows.catalog import make_lv
from repro.workflows.pools import generate_component_history, generate_pool

from make_pinned import HISTORY_SIZE, POOL_SEED, POOL_SIZE, cases


def main() -> None:
    lv = make_lv()
    pool = generate_pool(lv, POOL_SIZE, seed=POOL_SEED)
    histories = {
        label: generate_component_history(
            lv, label, size=HISTORY_SIZE, seed=POOL_SEED
        )
        for label in lv.labels
    }
    pinned = {}
    for key, algorithm, budget, failure_rate in cases():
        problem = TuningProblem.create(
            workflow=lv,
            objective=EXECUTION_TIME,
            pool=pool,
            budget_runs=budget,
            seed=3,
            histories=histories,
            failure_rate=failure_rate,
        )
        result = algorithm.tune(problem)
        scores = result.predict_pool(pool)
        pinned[key] = {"pool_scores": list(scores)}
        print(f"{key:12s} scores[:3]={[f'{s:.6g}' for s in scores[:3]]}")

    path = Path(__file__).with_name("pinned_scores.json")
    path.write_text(json.dumps(pinned, indent=1, sort_keys=True))
    roundtrip = json.loads(path.read_text())
    for key, row in pinned.items():
        assert roundtrip[key]["pool_scores"] == row["pool_scores"], key
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
