"""Unit tests for the regression tree."""

import numpy as np
import pytest

from repro.ml.tree import RegressionTree


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestFitting:
    def test_constant_target_single_leaf(self, rng):
        X = rng.uniform(size=(30, 3))
        y = np.full(30, 7.0)
        tree = RegressionTree(max_depth=4).fit(X, y)
        np.testing.assert_allclose(tree.predict(X), 7.0)
        assert tree.n_nodes == 1

    def test_perfect_split_on_step_function(self, rng):
        X = rng.uniform(size=(100, 2))
        y = np.where(X[:, 0] > 0.5, 10.0, -10.0)
        tree = RegressionTree(max_depth=2).fit(X, y)
        np.testing.assert_allclose(tree.predict(X), y)
        assert tree.depth >= 1

    def test_leaf_predicts_mean(self):
        X = np.array([[0.0], [0.0], [1.0], [1.0]])
        y = np.array([1.0, 3.0, 10.0, 20.0])
        tree = RegressionTree(max_depth=1).fit(X, y)
        pred = tree.predict(np.array([[0.0], [1.0]]))
        np.testing.assert_allclose(pred, [2.0, 15.0])

    def test_max_depth_zero_is_stump(self, rng):
        X = rng.uniform(size=(50, 2))
        y = rng.normal(size=50)
        tree = RegressionTree(max_depth=0).fit(X, y)
        assert tree.n_nodes == 1
        np.testing.assert_allclose(tree.predict(X), y.mean())

    def test_min_samples_leaf_respected(self, rng):
        X = rng.uniform(size=(20, 1))
        y = rng.normal(size=20)
        tree = RegressionTree(max_depth=10, min_samples_leaf=5).fit(X, y)

        # Count leaf populations by walking predictions back to leaves.
        def leaf_sizes(node, rows):
            if tree.left[node] == -1:
                return [len(rows)]
            mask = X[rows, tree.feature[node]] <= tree.threshold[node]
            return leaf_sizes(tree.left[node], rows[mask]) + leaf_sizes(
                tree.right[node], rows[~mask]
            )

        assert min(leaf_sizes(0, np.arange(20))) >= 5

    def test_gamma_prunes_weak_splits(self, rng):
        X = rng.uniform(size=(60, 2))
        y = rng.normal(scale=0.01, size=60)  # nearly constant
        strict = RegressionTree(max_depth=6, gamma=10.0).fit(X, y)
        loose = RegressionTree(max_depth=6, gamma=0.0).fit(X, y)
        assert strict.n_nodes <= loose.n_nodes
        assert strict.n_nodes == 1

    def test_duplicate_feature_values_no_split(self):
        X = np.ones((10, 2))
        y = np.arange(10.0)
        tree = RegressionTree(max_depth=4).fit(X, y)
        assert tree.n_nodes == 1  # nothing to split on

    def test_gradient_fit_leaf_weight_regularised(self):
        # Single leaf: w* = -G/(H + lambda)
        X = np.ones((4, 1))
        g = np.array([1.0, 1.0, 1.0, 1.0])
        h = np.ones(4)
        tree = RegressionTree(max_depth=0, reg_lambda=4.0)
        tree.fit_gradients(X, g, h)
        assert tree.predict(X)[0] == pytest.approx(-4.0 / 8.0)

    def test_zero_samples_rejected(self):
        tree = RegressionTree()
        with pytest.raises(ValueError):
            tree.fit(np.empty((0, 2)), np.empty(0))

    def test_shape_validation(self):
        tree = RegressionTree()
        with pytest.raises(ValueError):
            tree.fit(np.ones(5), np.ones(5))  # X must be 2-D
        with pytest.raises(ValueError):
            tree.fit_gradients(np.ones((5, 2)), np.ones(4), np.ones(5))

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=-1)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)
        with pytest.raises(ValueError):
            RegressionTree(reg_lambda=-1.0)


class TestPrediction:
    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.ones((1, 2)))

    def test_predict_validates_shape(self, rng):
        tree = RegressionTree(max_depth=2).fit(
            rng.uniform(size=(20, 2)), rng.normal(size=20)
        )
        with pytest.raises(ValueError):
            tree.predict(np.ones(3))

    def test_prediction_within_target_range(self, rng):
        X = rng.uniform(size=(100, 3))
        y = rng.uniform(5.0, 10.0, size=100)
        tree = RegressionTree(max_depth=6).fit(X, y)
        pred = tree.predict(rng.uniform(size=(50, 3)))
        assert pred.min() >= 5.0 - 1e-9 and pred.max() <= 10.0 + 1e-9

    def test_deterministic(self, rng):
        X = rng.uniform(size=(50, 4))
        y = rng.normal(size=50)
        t1 = RegressionTree(max_depth=4).fit(X, y)
        t2 = RegressionTree(max_depth=4).fit(X, y)
        np.testing.assert_array_equal(t1.predict(X), t2.predict(X))

    def test_feature_subsampling_uses_seed(self, rng):
        X = rng.uniform(size=(80, 6))
        y = X @ np.arange(1.0, 7.0)
        t1 = RegressionTree(max_depth=3, max_features=2, random_state=1).fit(X, y)
        t2 = RegressionTree(max_depth=3, max_features=2, random_state=1).fit(X, y)
        np.testing.assert_array_equal(t1.predict(X), t2.predict(X))
