"""Unit tests for the staging transport cost model."""

import pytest

from repro.cluster.allocation import place_component
from repro.cluster.machine import Machine
from repro.insitu.transport import StagingChannelModel

MACHINE = Machine()


def channel(prod_procs=64, prod_ppn=16, cons_procs=64, cons_ppn=16,
            message_bytes=1e8, streams=1):
    return StagingChannelModel(
        machine=MACHINE,
        producer=place_component(prod_procs, prod_ppn),
        consumer=place_component(cons_procs, cons_ppn),
        message_bytes=message_bytes,
        concurrent_streams=streams,
    )


class TestPublish:
    def test_positive_and_scales_with_size(self):
        small = channel(message_bytes=1e6).publish_seconds()
        large = channel(message_bytes=1e9).publish_seconds()
        assert 0 < small < large

    def test_metadata_grows_with_procs(self):
        few = channel(prod_procs=4, cons_procs=4).publish_seconds()
        many = channel(prod_procs=1000, prod_ppn=35, cons_procs=1000,
                       cons_ppn=35).publish_seconds()
        assert many > few


class TestDrain:
    def test_bandwidth_bounded_by_weakest_link(self):
        ch = channel()
        assert ch.channel_gbps() <= MACHINE.fabric_bandwidth_gbps
        # single-node consumer limits aggregate NIC
        narrow = channel(cons_procs=2, cons_ppn=2)
        assert narrow.channel_gbps() <= ch.channel_gbps()

    def test_fabric_sharing_reduces_bandwidth(self):
        solo = channel(streams=1).channel_gbps()
        shared = channel(streams=3).channel_gbps()
        assert shared < solo

    def test_drain_includes_latency_floor(self):
        ch = channel(message_bytes=0.0)
        assert ch.drain_seconds() > 0

    def test_decomposition_mismatch_costs(self):
        matched = channel(prod_procs=64, cons_procs=64).drain_seconds()
        mismatched = channel(prod_procs=640, prod_ppn=32,
                             cons_procs=4, cons_ppn=4).drain_seconds()
        assert mismatched > matched

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            channel(message_bytes=-1)
