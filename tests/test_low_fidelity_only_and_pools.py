"""Tests for the LowFidelityOnly ablation tuner and pool replication."""

import numpy as np
import pytest

from repro.core.algorithms import LowFidelityOnly
from repro.core.objectives import COMPUTER_TIME
from repro.core.problem import TuningProblem
from repro.workflows.pools import generate_pool


class TestLowFidelityOnly:
    def test_respects_budget_with_history(self, lv, lv_pool, lv_histories):
        problem = TuningProblem.create(
            lv, COMPUTER_TIME, lv_pool, budget_runs=12, seed=1,
            histories=lv_histories,
        )
        result = LowFidelityOnly().tune(problem)
        assert result.runs_used == 12
        assert len(result.measured) == 12
        assert result.algorithm == "LowFid"

    def test_pays_components_without_history(self, lv, lv_pool, lv_histories):
        problem = TuningProblem.create(
            lv, COMPUTER_TIME, lv_pool, budget_runs=12, seed=1,
            histories=lv_histories,
        )
        problem.collector.histories = lv_histories  # paid source
        # Simulate "no free history" by the algorithm's own flag: attach
        # histories but construct a problem where the algorithm must pay.
        algo = LowFidelityOnly(component_runs_fraction=0.5)
        # free history branch triggers since histories exist; emulate the
        # paid path with an empty-history collector plus paid batches is
        # covered in collector tests; here assert the free path.
        result = algo.tune(problem)
        assert result.runs_used == 12

    def test_model_is_acm(self, lv, lv_pool, lv_histories):
        from repro.core.low_fidelity import LowFidelityModel

        problem = TuningProblem.create(
            lv, COMPUTER_TIME, lv_pool, budget_runs=10, seed=1,
            histories=lv_histories,
        )
        result = LowFidelityOnly().tune(problem)
        assert isinstance(result.model, LowFidelityModel)

    def test_measures_its_own_top_picks(self, lv, lv_pool, lv_histories):
        problem = TuningProblem.create(
            lv, COMPUTER_TIME, lv_pool, budget_runs=10, seed=1,
            histories=lv_histories,
        )
        result = LowFidelityOnly().tune(problem)
        scores = result.predict_pool(lv_pool)
        top10 = set(np.argsort(scores)[:10].tolist())
        measured_idx = {lv_pool.configs.index(c) for c in result.measured}
        assert measured_idx == top10


class TestPoolReplication:
    def test_replicated_pool_shares_configs(self, lv):
        single = generate_pool(lv, 60, seed=9, replicates=1)
        averaged = generate_pool(lv, 60, seed=9, replicates=3)
        assert single.configs == averaged.configs

    def test_averaging_reduces_noise(self, lv):
        """Replicated values sit closer to the noise-free truth."""
        from repro.insitu import measure_workflow

        single = generate_pool(lv, 60, seed=9, replicates=1)
        averaged = generate_pool(lv, 60, seed=9, replicates=4)
        errs_single, errs_avg = [], []
        for i, config in enumerate(single.configs[:30]):
            clean = measure_workflow(lv, config, noise_sigma=0).execution_seconds
            errs_single.append(
                abs(single.measurements[i].execution_seconds - clean) / clean
            )
            errs_avg.append(
                abs(averaged.measurements[i].execution_seconds - clean) / clean
            )
        assert np.mean(errs_avg) < np.mean(errs_single)

    def test_invalid_replicates(self, lv):
        with pytest.raises(ValueError):
            generate_pool(lv, 10, seed=9, replicates=0)

    def test_computer_time_definition_kept(self, lv):
        averaged = generate_pool(lv, 20, seed=9, replicates=3)
        m = averaged.measurements[0]
        # Averaging exec and core-hours jointly preserves the definition
        # because nodes are fixed per config.
        expected = m.execution_seconds * m.nodes * lv.machine.node.cores / 3600
        assert m.computer_core_hours == pytest.approx(expected, rel=1e-9)
