"""Tests for the workflow catalog and measured pools."""

import numpy as np
import pytest

from repro.insitu.measurement import measure_workflow
from repro.workflows.catalog import (
    EXPERT_CONFIGS,
    expert_config,
    make_workflow,
)
from repro.workflows.pools import (
    generate_component_history,
    generate_pool,
    pool_size_for,
)


class TestCatalog:
    def test_space_sizes_match_paper_magnitudes(self, lv, hs, gp):
        # Paper: LV 2.9e9 (raw product here includes infeasible combos),
        # HS 5.1e10, GP 8.5e7 — same orders of magnitude.
        assert 1e9 < lv.space.size() < 1e11
        assert 1e10 < hs.space.size() < 1e12
        assert 1e7 < gp.space.size() < 1e9

    def test_component_config_extraction(self, lv):
        config = (288, 18, 2, 560, 20, 1)
        assert lv.component_config("lammps", config) == (288, 18, 2)
        assert lv.component_config("voro", config) == (560, 20, 1)

    def test_dag_structure(self, gp):
        assert set(gp.graph.successors("gray_scott")) == {"pdf_calc", "gplot"}
        assert set(gp.graph.successors("pdf_calc")) == {"pplot"}

    def test_cycle_rejected(self, lv):
        from repro.insitu.workflow import Coupling, WorkflowDefinition

        with pytest.raises(ValueError, match="cycle"):
            WorkflowDefinition(
                name="bad",
                components=lv.components,
                couplings=(
                    Coupling("lammps", "voro"),
                    Coupling("voro", "lammps"),
                ),
            )

    def test_unknown_coupling_label_rejected(self, lv):
        from repro.insitu.workflow import Coupling, WorkflowDefinition

        with pytest.raises(ValueError, match="unknown component"):
            WorkflowDefinition(
                name="bad",
                components=lv.components,
                couplings=(Coupling("lammps", "ghost"),),
            )

    def test_make_workflow_by_name(self):
        assert make_workflow("LV").name == "LV"
        with pytest.raises(ValueError):
            make_workflow("XX")

    def test_expert_configs_feasible(self):
        for (name, objective), config in EXPERT_CONFIGS.items():
            workflow = make_workflow(name)
            assert workflow.space.contains(config), (name, objective)
            assert workflow.constraint(config), (name, objective)

    def test_expert_config_lookup(self):
        assert expert_config("LV", "execution_time") == (288, 18, 2, 288, 18, 2)
        with pytest.raises(ValueError):
            expert_config("LV", "energy")

    def test_encoder_has_footprint_features(self, lv):
        names = lv.encoder().feature_names()
        assert "lammps.nodes" in names
        assert "voro.total_procs" in names

    def test_buffer_hook_bounds(self, hs):
        config = list(expert_config("HS", "computer_time"))
        buf_pos = hs.space.position("heat.buffer_mb")
        coupling = hs.couplings[0]
        config[buf_pos] = 1
        assert 1 <= hs.buffer_messages(coupling, tuple(config)) <= 8
        config[buf_pos] = 40
        assert hs.buffer_messages(coupling, tuple(config)) <= 8


class TestPoolSizing:
    def test_paper_example(self):
        # 1/n = 0.2%, P = 98.2% -> ~2000
        assert 1900 <= pool_size_for(0.002, 0.982) <= 2100

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            pool_size_for(0.0, 0.9)
        with pytest.raises(ValueError):
            pool_size_for(0.1, 1.0)


class TestPools:
    def test_pool_configs_feasible_and_unique(self, lv, lv_pool):
        assert len(set(lv_pool.configs)) == len(lv_pool)
        for config in lv_pool.configs[:20]:
            assert lv.constraint(config)

    def test_pool_deterministic(self, lv, lv_pool):
        again = generate_pool(lv, len(lv_pool), seed=7)
        assert again.configs == lv_pool.configs
        assert again.measurements[0].execution_seconds == pytest.approx(
            lv_pool.measurements[0].execution_seconds
        )

    def test_different_seed_different_pool(self, lv, lv_pool):
        other = generate_pool(lv, len(lv_pool), seed=8)
        assert other.configs != lv_pool.configs

    def test_objective_values_align(self, lv_pool):
        values = lv_pool.objective_values("execution_time")
        assert values.shape == (len(lv_pool),)
        best = lv_pool.best_index("execution_time")
        assert values[best] == lv_pool.best_value("execution_time")

    def test_lookup(self, lv_pool):
        config = lv_pool.configs[5]
        assert lv_pool.lookup(config).config == config
        with pytest.raises(KeyError):
            lv_pool.lookup((2, 1, 1, 2, 1, 1))

    def test_pool_values_match_direct_measurement(self, lv, lv_pool):
        config = lv_pool.configs[0]
        direct = measure_workflow(lv, config, noise_sigma=0.05, noise_seed=7)
        assert lv_pool.lookup(config).execution_seconds == pytest.approx(
            direct.execution_seconds
        )


class TestComponentHistory:
    def test_history_shapes(self, lv_histories):
        history = lv_histories["lammps"]
        assert len(history) == 120
        assert history.execution_seconds.shape == (120,)
        assert (history.execution_seconds > 0).all()
        assert (history.computer_core_hours > 0).all()

    def test_objective_selector(self, lv_histories):
        history = lv_histories["voro"]
        np.testing.assert_array_equal(
            history.objective_values("execution_time"), history.execution_seconds
        )
        with pytest.raises(ValueError):
            history.objective_values("memory")

    def test_subset(self, lv_histories):
        history = lv_histories["lammps"]
        sub = history.subset([0, 5, 7])
        assert len(sub) == 3
        assert sub.configs[1] == history.configs[5]
        assert sub.execution_seconds[1] == history.execution_seconds[5]

    def test_history_deterministic(self, lv):
        a = generate_component_history(lv, "lammps", size=50, seed=11)
        b = generate_component_history(lv, "lammps", size=50, seed=11)
        assert a.configs == b.configs
        np.testing.assert_array_equal(a.execution_seconds, b.execution_seconds)
