"""Tests for component models, the low-fidelity ACM, and the surrogate."""

import numpy as np
import pytest

from repro.core.collector import ComponentBatchData
from repro.core.component_models import ComponentModelSet
from repro.core.low_fidelity import LowFidelityModel
from repro.core.objectives import COMPUTER_TIME, EXECUTION_TIME
from repro.core.surrogate import default_surrogate


def batch_data(histories):
    return {
        label: ComponentBatchData(
            label, h.configs, h.execution_seconds, h.computer_core_hours
        )
        for label, h in histories.items()
    }


@pytest.fixture(scope="module")
def lv_component_models(lv, lv_histories):
    return ComponentModelSet.train(
        lv, EXECUTION_TIME, batch_data(lv_histories), random_state=0
    )


class TestComponentModels:
    def test_prediction_matrix_shape(self, lv, lv_component_models, lv_pool):
        matrix = lv_component_models.predict_components(list(lv_pool.configs[:10]))
        assert matrix.shape == (2, 10)
        assert (matrix > 0).all()

    def test_empty_input(self, lv_component_models):
        assert lv_component_models.predict_components([]).shape == (2, 0)

    def test_models_capture_component_scaling(self, lv, lv_component_models):
        # More LAMMPS processes (same density) => faster predicted solo time.
        slow = (8, 8, 1, 64, 16, 1)
        fast = (512, 32, 1, 64, 16, 1)
        m = lv_component_models.predict_components([slow, fast])
        assert m[0, 1] < m[0, 0]  # lammps row

    def test_too_few_samples_rejected(self, lv, lv_histories):
        tiny = {
            "lammps": ComponentBatchData(
                "lammps",
                lv_histories["lammps"].configs[:1],
                lv_histories["lammps"].execution_seconds[:1],
                lv_histories["lammps"].computer_core_hours[:1],
            )
        }
        with pytest.raises(ValueError):
            ComponentModelSet.train(lv, EXECUTION_TIME, tiny)

    def test_missing_configurable_component_rejected(self, lv, lv_histories):
        data = batch_data(lv_histories)
        del data["voro"]
        with pytest.raises(ValueError, match="voro"):
            ComponentModelSet.train(lv, EXECUTION_TIME, data)

    def test_unconfigurable_components_constant(self, gp):
        from repro.workflows.pools import generate_component_history

        data = {}
        for label in ("gray_scott", "pdf_calc"):
            h = generate_component_history(gp, label, size=80, seed=7)
            data[label] = ComponentBatchData(
                label, h.configs, h.execution_seconds, h.computer_core_hours
            )
        models = ComponentModelSet.train(gp, EXECUTION_TIME, data, random_state=0)
        some_configs = [
            (64, 16, 32, 16, 1, 1),
            (128, 32, 64, 32, 1, 1),
        ]
        matrix = models.predict_components(some_configs)
        gplot_row = gp.labels.index("gplot")
        assert matrix[gplot_row, 0] == matrix[gplot_row, 1]  # constant


class TestLowFidelity:
    def test_execution_score_is_max_of_components(self, lv, lv_component_models):
        model = LowFidelityModel(lv_component_models)
        configs = [(288, 18, 2, 288, 18, 2)]
        components = lv_component_models.predict_components(configs)
        assert model.predict(configs)[0] == pytest.approx(components.max(axis=0)[0])

    def test_computer_score_is_sum(self, lv, lv_histories):
        models = ComponentModelSet.train(
            lv, COMPUTER_TIME, batch_data(lv_histories), random_state=0
        )
        model = LowFidelityModel(models)
        configs = [(288, 18, 2, 288, 18, 2)]
        components = models.predict_components(configs)
        assert model.predict(configs)[0] == pytest.approx(components.sum(axis=0)[0])

    def test_rank_and_top(self, lv_component_models, lv_pool):
        model = LowFidelityModel(lv_component_models)
        configs = list(lv_pool.configs[:30])
        order = model.rank(configs)
        scores = model.predict(configs)
        assert scores[order[0]] == scores.min()
        top = model.top(configs, 5)
        assert len(top) == 5
        assert top[0] == configs[order[0]]

    def test_low_fidelity_informative(self, lv_component_models, lv_pool):
        """The ACM must rank far better than chance (Fig. 4's premise)."""
        from repro.core.metrics import recall_score

        model = LowFidelityModel(lv_component_models)
        scores = model.predict(list(lv_pool.configs))
        truth = lv_pool.objective_values("execution_time")
        assert recall_score(scores, truth, 25) > 3 * (25 / len(lv_pool) * 100)


class TestSurrogate:
    def test_fit_predict_round(self, lv, lv_pool):
        surrogate = default_surrogate(lv.encoder(), random_state=0)
        configs = list(lv_pool.configs[:40])
        values = lv_pool.objective_values("execution_time")[:40]
        surrogate.fit(configs, values)
        pred = surrogate.predict(configs)
        assert pred.shape == (40,)
        assert (pred > 0).all()  # log-target keeps positivity

    def test_unfitted_predict_raises(self, lv):
        with pytest.raises(RuntimeError):
            default_surrogate(lv.encoder()).predict([(2, 1, 1, 2, 1, 1)])

    def test_learns_pool_ranking(self, lv, lv_pool):
        from scipy.stats import spearmanr

        surrogate = default_surrogate(lv.encoder(), random_state=0)
        n = len(lv_pool)
        train = list(lv_pool.configs[: n // 2])
        truth = lv_pool.objective_values("execution_time")
        surrogate.fit(train, truth[: n // 2])
        test = list(lv_pool.configs[n // 2 :])
        rho = spearmanr(surrogate.predict(test), truth[n // 2 :]).statistic
        assert rho > 0.7

    def test_extra_features_change_input(self, lv, lv_pool):
        calls = []

        def extra(configs):
            calls.append(len(configs))
            return np.ones((len(configs), 2))

        surrogate = default_surrogate(lv.encoder(), random_state=0,
                                      extra_features=extra)
        configs = list(lv_pool.configs[:10])
        surrogate.fit(configs, np.arange(1.0, 11.0))
        surrogate.predict(configs)
        assert calls == [10, 10]

    def test_misaligned_fit_rejected(self, lv, lv_pool):
        surrogate = default_surrogate(lv.encoder())
        with pytest.raises(ValueError):
            surrogate.fit(list(lv_pool.configs[:3]), np.ones(4))

    def test_clone_unfitted(self, lv, lv_pool):
        surrogate = default_surrogate(lv.encoder(), random_state=0)
        surrogate.fit(list(lv_pool.configs[:5]), np.arange(1.0, 6.0))
        clone = surrogate.clone()
        assert not clone.is_fitted
