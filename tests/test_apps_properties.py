"""Property-based tests of the application models (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import GrayScott, HeatTransfer, Lammps, StageWrite, VoroPlusPlus
from repro.apps.scaling import (
    amdahl_compute_seconds,
    exchange_seconds,
    halo_bytes_2d,
    halo_bytes_3d,
    thread_speedup,
)
from repro.cluster.allocation import place_component
from repro.cluster.machine import Machine

MACHINE = Machine()


@st.composite
def placements(draw):
    ppn = draw(st.integers(1, 35))
    nodes = draw(st.integers(1, 30))
    procs = max(2, ppn * nodes - draw(st.integers(0, ppn - 1)))
    threads = draw(st.integers(1, max(1, 36 // ppn)))
    return place_component(procs, ppn, threads)


@given(p=placements(), work=st.floats(1.0, 1e5), serial=st.floats(0.0, 0.1),
       eff=st.floats(0.0, 1.0), bpf=st.floats(0.0, 1.5))
@settings(max_examples=60, deadline=None)
def test_amdahl_time_positive_and_finite(p, work, serial, eff, bpf):
    t = amdahl_compute_seconds(MACHINE, p, work, serial, eff, bpf)
    assert np.isfinite(t) and t > 0


@given(p=placements(), work=st.floats(10.0, 1e4))
@settings(max_examples=40, deadline=None)
def test_amdahl_never_beats_ideal_speedup(p, work):
    """Time is at least work / (ideal workers × rate)."""
    t = amdahl_compute_seconds(MACHINE, p, work, 0.0, 1.0, 0.0)
    ideal = work / (p.procs * p.threads_per_proc * MACHINE.node.core_gflops)
    assert t >= ideal - 1e-12


@given(threads=st.integers(1, 8), eff=st.floats(0.0, 1.0))
@settings(max_examples=40, deadline=None)
def test_thread_speedup_bounds(threads, eff):
    s = thread_speedup(threads, eff)
    assert 1.0 <= s <= threads


@given(domain=st.floats(1e3, 1e10), procs=st.integers(1, 2048))
@settings(max_examples=40, deadline=None)
def test_halo_3d_sublinear_in_procs(domain, procs):
    """Per-process halo shrinks as the decomposition refines."""
    h1 = halo_bytes_3d(domain, procs)
    h2 = halo_bytes_3d(domain, procs * 2)
    assert h1 >= 0 and h2 <= h1 or procs == 1


@given(domain=st.floats(1e6, 1e10), px=st.integers(1, 64), py=st.integers(1, 64))
@settings(max_examples=40, deadline=None)
def test_halo_2d_nonnegative(domain, px, py):
    assert halo_bytes_2d(domain, px, py) >= 0.0


@given(p=placements(), per_proc=st.floats(0.0, 1e8))
@settings(max_examples=40, deadline=None)
def test_exchange_seconds_nonnegative_monotone(p, per_proc):
    t1 = exchange_seconds(MACHINE, p, per_proc)
    t2 = exchange_seconds(MACHINE, p, per_proc * 2)
    assert 0 <= t1 <= t2 + 1e-12


APP_CONFIG_STRATEGIES = {
    "lammps": st.tuples(st.integers(2, 1085), st.integers(1, 35),
                        st.integers(1, 4)),
    "voro": st.tuples(st.integers(2, 1085), st.integers(1, 35),
                      st.integers(1, 4)),
    "heat": st.tuples(st.integers(2, 32), st.integers(2, 32),
                      st.integers(1, 35), st.sampled_from((4, 8, 16, 32)),
                      st.integers(1, 40)),
    "stage_write": st.tuples(st.integers(2, 1085), st.integers(1, 35)),
    "gray_scott": st.tuples(st.integers(2, 1085), st.integers(1, 35)),
}

_APPS = {
    "lammps": Lammps(),
    "voro": VoroPlusPlus(),
    "heat": HeatTransfer(),
    "stage_write": StageWrite(),
    "gray_scott": GrayScott(),
}


@given(name=st.sampled_from(sorted(_APPS)), data=st.data())
@settings(max_examples=80, deadline=None)
def test_step_profiles_always_well_formed(name, data):
    """Any in-space configuration yields a positive, finite step profile."""
    app = _APPS[name]
    config = data.draw(APP_CONFIG_STRATEGIES[name])
    if not app.space.contains(config):
        return
    profile = app.step_profile(MACHINE, config, app.nominal_input_bytes)
    assert np.isfinite(profile.compute_seconds)
    assert profile.compute_seconds > 0
    assert profile.output_bytes >= 0
    assert profile.write_bytes >= 0
