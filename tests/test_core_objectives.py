"""Tests for objectives and their ACM combination functions."""

import numpy as np
import pytest

from repro.core.objectives import (
    COMPUTER_TIME,
    EXECUTION_TIME,
    Objective,
    get_objective,
)


def test_execution_time_uses_max():
    matrix = np.array([[1.0, 5.0], [3.0, 2.0]])
    np.testing.assert_array_equal(EXECUTION_TIME.combine(matrix), [3.0, 5.0])


def test_computer_time_uses_sum():
    matrix = np.array([[1.0, 5.0], [3.0, 2.0]])
    np.testing.assert_array_equal(COMPUTER_TIME.combine(matrix), [4.0, 7.0])


def test_combine_requires_matrix():
    with pytest.raises(ValueError):
        EXECUTION_TIME.combine(np.array([1.0, 2.0]))


def test_invalid_combine_name():
    with pytest.raises(ValueError):
        Objective("x", "mean", "s")


def test_get_objective():
    assert get_objective("execution_time") is EXECUTION_TIME
    assert get_objective("computer_time") is COMPUTER_TIME
    with pytest.raises(ValueError):
        get_objective("energy")
