"""The serve rehydration caches: bounds, concurrency, kill switch.

Covers the three cache tiers of :mod:`repro.serve.artifacts` directly
(LRU order, capacity bounds, consume-on-hit, telemetry counters,
multi-threaded stress) and through the session manager (shared
problem artifacts by reference, snapshot invalidation on create/close,
cross-session isolation under concurrent churn).  The kill-switch
tests prove ``REPRO_NO_SERVE_CACHE=1`` reproduces the
rebuild-everything behaviour byte for byte.
"""

from __future__ import annotations

import threading

import pytest

from repro.serve.artifacts import (
    ArtifactCache,
    CachingModelRegistry,
    LruCache,
    cache_enabled,
    spec_key,
)
from repro.serve.sessions import SessionManager
from repro.serve.specs import SessionSpec, build_algorithm, build_problem

SMALL = dict(budget=6, pool_size=50, history_size=30, seed=3)


def offline_result(spec: SessionSpec):
    return build_algorithm(spec).tune(build_problem(spec))


def comparable(result):
    return {
        "algorithm": result.algorithm,
        "measured": list(result.measured.items()),
        "runs_used": result.runs_used,
        "cost_execution_seconds": result.cost_execution_seconds,
        "cost_core_hours": result.cost_core_hours,
        "events": [e.as_dict(include_timing=False) for e in result.trace],
    }


def drive(manager: SessionManager, name: str, evict_every_step=False) -> dict:
    for _ in range(100):
        if evict_every_step:
            manager.evict_all()
        proposal = manager.ask(name)
        if proposal.get("done"):
            return proposal
        if evict_every_step:
            manager.evict_all()
        manager.tell(name, proposal["ask_id"])
    raise AssertionError("session did not finish in 100 cycles")


class TestLruCache:
    def test_lru_order_capacity_and_counters(self):
        cache = LruCache("t", capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes a
        cache.put("c", 3)  # evicts b, the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert len(cache) == 2
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["hits"] == 3 and stats["misses"] == 1
        assert stats["hit_ratio"] == 0.75

    def test_take_consumes_and_pop_is_uncounted(self):
        cache = LruCache("t", capacity=4)
        cache.put("a", "x")
        assert cache.take("a") == "x"
        assert cache.take("a") is None  # consumed: second take misses
        cache.put("b", "y")
        assert cache.pop("b") == "y"
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1  # pop uncounted

    def test_disabled_cache_never_stores_or_hits(self):
        cache = LruCache("t", capacity=4, enabled=False)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert cache.take("a", "fallback") == "fallback"
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0

    def test_counters_flow_through_telemetry_hub(self):
        from repro import telemetry
        from repro.telemetry import Telemetry

        hub = Telemetry()
        with telemetry.use(hub):
            cache = LruCache("unittier", capacity=1)
            cache.put("a", 1)
            cache.get("a")
            cache.get("ghost")
            cache.put("b", 2)  # evicts a
        metrics = {m["name"]: m["value"] for m in hub.metrics_snapshot()}
        assert metrics["serve.cache.unittier.hits"] == 1
        assert metrics["serve.cache.unittier.misses"] == 1
        assert metrics["serve.cache.unittier.evictions"] == 1
        assert metrics["serve.cache.unittier.bytes"] > 0

    def test_multithreaded_stress_stays_bounded_and_consistent(self):
        """Hammer one cache from many threads: the capacity bound, the
        per-key values, and the counter bookkeeping all survive."""
        cache = LruCache("stress", capacity=8)
        errors: list = []

        def worker(tid: int) -> None:
            try:
                for i in range(400):
                    key = (tid, i % 12)
                    value = cache.get(key)
                    if value is not None:
                        # A hit must return this thread's own value —
                        # keys are thread-scoped, so any bleed-through
                        # would surface as a foreign tuple here.
                        assert value == (tid, i % 12, "v"), value
                    cache.put(key, (tid, i % 12, "v"))
                    if i % 50 == 0:
                        cache.stats()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(tid,)) for tid in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 8
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 8 * 400
        assert stats["evictions"] > 0


class TestArtifactTiers:
    def test_problem_artifacts_shared_by_reference(self):
        cache = ArtifactCache()
        a = cache.problem_artifacts(SessionSpec(algorithm="rs", **SMALL))
        b = cache.problem_artifacts(SessionSpec(algorithm="ceal", **SMALL))
        # Same deterministic key (algorithm is not part of it): the
        # exact same bundle object, not an equal copy.
        assert a is b
        other = cache.problem_artifacts(
            SessionSpec(algorithm="rs", **{**SMALL, "seed": 4})
        )
        assert other is not a
        assert cache.problems.stats()["hits"] == 1
        assert cache.problems.stats()["misses"] == 2

    def test_spec_key_covers_only_artifact_fields(self):
        base = SessionSpec(algorithm="rs", **SMALL)
        same = SessionSpec(algorithm="ceal", budget=9, **{
            k: v for k, v in SMALL.items() if k != "budget"
        })
        assert spec_key(base) == spec_key(same)
        assert spec_key(base) != spec_key(
            SessionSpec(algorithm="rs", **{**SMALL, "noise_sigma": 0.2})
        )

    def test_all_three_tiers_evict_at_capacity_one(self):
        cache = ArtifactCache(problems=1, models=1, snapshots=1)
        s1 = SessionSpec(algorithm="rs", **SMALL)
        s2 = SessionSpec(algorithm="rs", **{**SMALL, "seed": 4})
        a1 = cache.problem_artifacts(s1)
        cache.problem_artifacts(s2)  # evicts s1's bundle
        assert len(cache.problems) == 1
        assert cache.problem_artifacts(s1) is not a1  # rebuilt, not cached

        registry = cache.registry()
        registry.fit_or_load("k1", lambda: "m1")
        registry.fit_or_load("k2", lambda: "m2")  # evicts k1
        assert len(cache.models) == 1
        assert cache.models.get("k1") is None
        assert cache.models.get("k2") == "m2"

        cache.stash_snapshot("s1", {"iteration": 1})
        cache.stash_snapshot("s2", {"iteration": 2})  # evicts s1
        assert cache.take_snapshot("s1") is None
        assert cache.take_snapshot("s2") == {"iteration": 2}
        for tier in (cache.problems, cache.models, cache.snapshots):
            assert tier.stats()["evictions"] >= 1

    def test_model_registry_promotes_to_shared_tier(self):
        cache = ArtifactCache()
        first = cache.registry()
        fits = []

        def fit():
            fits.append(1)
            return object()

        model = first.fit_or_load("key", fit)
        # A different registry front (a different session) over the
        # same cache gets the same object without refitting.
        second = cache.registry()
        assert second.fit_or_load("key", fit) is model
        assert len(fits) == 1
        assert first.misses == 1 and second.hits == 1

    def test_snapshot_invalidated_on_create_and_close(self, tmp_path):
        manager = SessionManager(tmp_path / "state", max_active=1)
        spec = dict(algorithm="rs", **SMALL)
        manager.create(dict(spec), name="a")
        manager.create(dict(spec, seed=4), name="b")  # evicts + stashes a
        assert len(manager.cache.snapshots) == 1
        manager.close("a", delete=True)
        assert manager.cache.take_snapshot("a") is None

    def test_concurrent_sessions_no_cross_session_bleed(self, tmp_path):
        """Six sessions with six distinct seeds driven from six threads
        over a two-resident manager (constant churn, one shared cache):
        every session must finish byte-identical to its own offline
        run — any artifact/model/snapshot bleed between sessions would
        change some session's trajectory."""
        manager = SessionManager(tmp_path / "state", max_active=2)
        specs = {
            f"s{i}": SessionSpec(
                algorithm=("rs", "lowfid", "ceal")[i % 3],
                use_history=True,
                **{**SMALL, "seed": 50 + i},
            )
            for i in range(6)
        }
        for name, spec in specs.items():
            manager.create(spec, name=name)
        errors: list = []

        def run(name: str) -> None:
            try:
                drive(manager, name)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((name, exc))

        threads = [
            threading.Thread(target=run, args=(name,)) for name in specs
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for name, spec in specs.items():
            assert comparable(manager.result(name)) == comparable(
                offline_result(spec)
            ), name


class TestKillSwitch:
    def test_env_variable_disables_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SERVE_CACHE", "1")
        assert not cache_enabled()
        cache = ArtifactCache()
        assert not cache.enabled
        spec = SessionSpec(algorithm="rs", **SMALL)
        a = cache.problem_artifacts(spec)
        b = cache.problem_artifacts(spec)
        assert a is not b  # every call rebuilds
        assert cache.stats()["problem"]["hits"] == 0

    def test_kill_switch_byte_identity(self, tmp_path, monkeypatch):
        """The same session driven with caches on, with the env kill
        switch set, and offline: one identical result."""
        spec = SessionSpec(algorithm="ceal", use_history=True, **SMALL)
        straight = comparable(offline_result(spec))

        manager_on = SessionManager(tmp_path / "on", max_active=1)
        assert manager_on.cache.enabled
        manager_on.create(spec, name="s")
        drive(manager_on, "s", evict_every_step=True)
        assert comparable(manager_on.result("s")) == straight

        monkeypatch.setenv("REPRO_NO_SERVE_CACHE", "1")
        manager_off = SessionManager(tmp_path / "off", max_active=1)
        assert not manager_off.cache.enabled
        manager_off.create(spec, name="s")
        drive(manager_off, "s", evict_every_step=True)
        assert comparable(manager_off.result("s")) == straight
        stats = manager_off.cache.stats()
        assert stats["problem"]["hits"] == 0
        assert stats["model"]["hits"] == 0
        assert stats["snapshot"]["hits"] == 0
