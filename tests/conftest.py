"""Shared fixtures: workflows, small measured pools, histories.

Pools are generated once per session (generation is memoised inside
``repro.workflows.pools`` as well) and kept small so the whole suite
stays fast while still exercising the real DES-backed ground truth.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

from repro.cluster.machine import Machine

# Deterministic property-based testing: the suite gates commits and
# benchmarks, so example generation must not vary across runs.
hypothesis_settings.register_profile("repro", derandomize=True)
hypothesis_settings.load_profile("repro")
from repro.workflows.catalog import make_gp, make_hs, make_lv
from repro.workflows.pools import generate_component_history, generate_pool

SMALL_POOL = 150


@pytest.fixture(scope="session")
def machine() -> Machine:
    return Machine()


@pytest.fixture(scope="session")
def lv():
    return make_lv()


@pytest.fixture(scope="session")
def hs():
    return make_hs()


@pytest.fixture(scope="session")
def gp():
    return make_gp()


@pytest.fixture(scope="session")
def lv_pool(lv):
    return generate_pool(lv, SMALL_POOL, seed=7)


@pytest.fixture(scope="session")
def hs_pool(hs):
    return generate_pool(hs, SMALL_POOL, seed=7)


@pytest.fixture(scope="session")
def gp_pool(gp):
    return generate_pool(gp, SMALL_POOL, seed=7)


@pytest.fixture(scope="session")
def lv_histories(lv):
    return {
        label: generate_component_history(lv, label, size=120, seed=7)
        for label in lv.labels
    }


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
