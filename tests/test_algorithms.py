"""Tests for the tuning algorithms (RS, AL, GEIST, ALpH) and shared helpers."""

import numpy as np
import pytest

from repro.core.algorithms import (
    ActiveLearning,
    Alph,
    Geist,
    RandomSampling,
    split_batches,
)
from repro.core.algorithms.base import CandidateTracker
from repro.core.objectives import EXECUTION_TIME
from repro.core.problem import TuningProblem

BUDGET = 16


@pytest.fixture()
def problem(lv, lv_pool, lv_histories):
    return TuningProblem.create(
        workflow=lv,
        objective=EXECUTION_TIME,
        pool=lv_pool,
        budget_runs=BUDGET,
        seed=3,
        histories=lv_histories,
    )


class TestSplitBatches:
    def test_even_split(self):
        assert split_batches(10, 5) == [2, 2, 2, 2, 2]

    def test_remainder_goes_first(self):
        assert split_batches(11, 4) == [3, 3, 3, 2]

    def test_total_below_iterations(self):
        assert split_batches(3, 5) == [1, 1, 1]

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_batches(0, 3)
        with pytest.raises(ValueError):
            split_batches(5, 0)


class TestCandidateTracker:
    def test_marking_removes(self):
        tracker = CandidateTracker([(1,), (2,), (3,)])
        tracker.mark([(2,)])
        assert tracker.remaining == [(1,), (3,)]

    def test_take_top_minimizes(self):
        tracker = CandidateTracker([(1,), (2,), (3,)])
        top = tracker.take_top(np.array([5.0, 1.0, 3.0]), [(1,), (2,), (3,)], 2)
        assert top == [(2,), (3,)]

    def test_take_top_misaligned(self):
        tracker = CandidateTracker([(1,)])
        with pytest.raises(ValueError):
            tracker.take_top(np.array([1.0, 2.0]), [(1,)], 1)


def _check_result(result, problem, algo_name):
    assert result.algorithm == algo_name
    assert result.runs_used == BUDGET
    assert len(result.measured) <= BUDGET
    # Every measured configuration came from the pool and has its true value.
    for config, value in result.measured.items():
        assert value == problem.pool.lookup(config).execution_seconds
    scores = result.predict_pool(problem.pool)
    assert scores.shape == (len(problem.pool),)
    best = result.best_config(problem.pool)
    assert best in problem.pool.configs
    assert result.best_actual_value(problem.pool) == problem.pool.lookup(
        best
    ).objective("execution_time")


class TestRandomSampling:
    def test_budget_and_result(self, problem):
        result = RandomSampling().tune(problem)
        _check_result(result, problem, "RS")
        assert len(result.measured) == BUDGET

    def test_deterministic_given_seed(self, lv, lv_pool, lv_histories):
        def run():
            p = TuningProblem.create(
                lv, EXECUTION_TIME, lv_pool, BUDGET, seed=9,
                histories=lv_histories,
            )
            return RandomSampling().tune(p)

        a, b = run(), run()
        assert list(a.measured) == list(b.measured)
        np.testing.assert_array_equal(
            a.predict_pool(lv_pool), b.predict_pool(lv_pool)
        )


class TestActiveLearning:
    def test_budget_and_result(self, problem):
        result = ActiveLearning(iterations=3).tune(problem)
        _check_result(result, problem, "AL")
        assert len(result.measured) == BUDGET
        guided = [e for e in result.trace if e.kind == "iteration"]
        assert len(guided) == 3

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            ActiveLearning(initial_fraction=0.0)
        with pytest.raises(ValueError):
            ActiveLearning(iterations=0)

    def test_beats_random_on_average(self, lv, lv_pool, lv_histories):
        """AL's guided sampling finds better configs than RS (statistical)."""
        gaps = {"AL": [], "RS": []}
        best = lv_pool.best_value("execution_time")
        for rep in range(6):
            for name, algo in (("AL", ActiveLearning()), ("RS", RandomSampling())):
                p = TuningProblem.create(
                    lv, EXECUTION_TIME, lv_pool, 20, seed=100 + rep,
                    histories=lv_histories,
                )
                result = algo.tune(p)
                gaps[name].append(result.best_actual_value(lv_pool) / best)
        assert np.mean(gaps["AL"]) <= np.mean(gaps["RS"]) + 0.02


class TestGeist:
    def test_budget_and_result(self, problem):
        result = Geist(iterations=3).tune(problem)
        _check_result(result, problem, "GEIST")
        assert len(result.measured) == BUDGET

    def test_exploration_share_in_trace(self, problem):
        result = Geist(iterations=2, explore_fraction=0.5).tune(problem)
        assert any(e.detail.get("explore", 0) > 0 for e in result.trace)


class TestAlph:
    def test_with_history_uses_full_budget_on_workflow(self, problem):
        result = Alph(use_history=True, iterations=3).tune(problem)
        _check_result(result, problem, "ALpH")
        assert len(result.measured) == BUDGET  # no component charge

    def test_without_history_pays_component_runs(self, lv, lv_pool, lv_histories):
        p = TuningProblem.create(
            lv, EXECUTION_TIME, lv_pool, BUDGET, seed=3, histories=lv_histories
        )
        result = Alph(use_history=False, component_runs_fraction=0.5,
                      iterations=2).tune(p)
        assert result.runs_used == BUDGET
        assert len(result.measured) == BUDGET - 8  # 8 batches paid

    def test_component_features_feed_model(self, problem):
        result = Alph(use_history=True, iterations=2).tune(problem)
        # The surrogate's feature function exists and produces 2 extra cols.
        extra = result.model.extra_features(list(problem.pool.configs[:4]))
        assert extra.shape == (2, 4) or extra.shape == (4, 2)
