"""The measurement store: recording, dedupe, concurrency, maintenance.

Covers the core :mod:`repro.store` contracts: content-signature
stability, write-through recording with row-key dedupe, the typed query
API and its stable iteration order, the model registry's
refit-on-miss equivalence, metadata/stats/gc/export maintenance, and —
the concurrency stresses — N forked processes *and* N threads in one
process writing interleaved batches to one database with no lost rows
and no ``database is locked`` surfacing.
"""

from __future__ import annotations

import multiprocessing
import os
import sqlite3
import threading

import numpy as np
import pytest

from repro import telemetry
from repro.store import (
    MeasurementStore,
    ModelRegistry,
    StoreContext,
    StoreError,
    encoding_signature,
    machine_signature,
    signature,
    space_signature,
    training_key,
)
from repro.store.db import StoreBinding


@pytest.fixture()
def store(tmp_path):
    st = MeasurementStore(tmp_path / "store.db")
    yield st
    st.close()


def make_context(**overrides) -> StoreContext:
    base = dict(
        kind="workflow",
        workflow="LV",
        label="",
        space_sig="space-a",
        machine_sig="machine-a",
        objective="computer_time",
    )
    base.update(overrides)
    return StoreContext(**base)


def make_rows(n, seed=0, offset=0):
    return [
        {
            "config": (i + offset, 2 * (i + offset)),
            "value": float(i + offset),
            "execution_seconds": 10.0 * (i + offset),
            "computer_core_hours": float(i + offset),
            "seed": seed,
        }
        for i in range(n)
    ]


class TestSignatures:
    def test_signature_is_deterministic_and_content_sensitive(self):
        assert signature("a", 1) == signature("a", 1)
        assert signature("a", 1) != signature("a", 2)
        assert signature("a", 1) != signature("a", "1")

    def test_space_and_machine_signatures(self, lv, hs):
        assert space_signature(lv.space) == space_signature(lv.space)
        assert space_signature(lv.space) != space_signature(hs.space)
        assert machine_signature(lv.machine) == machine_signature(hs.machine)
        assert encoding_signature(lv.encoder()) == encoding_signature(
            lv.encoder()
        )

    def test_context_key_hash_covers_every_field(self):
        base = make_context()
        for field, other in [
            ("kind", "component"),
            ("workflow", "HS"),
            ("label", "lammps"),
            ("space_sig", "space-b"),
            ("machine_sig", "machine-b"),
            ("objective", "execution_time"),
            ("encoding_sig", "enc-b"),
        ]:
            assert make_context(**{field: other}).key_hash != base.key_hash


class TestRecordAndQuery:
    def test_round_trip(self, store):
        context = make_context()
        assert store.record(context, make_rows(3)) == 3
        out = store.query(space_sig="space-a")
        assert len(out) == 3
        assert out.configs == ((0, 0), (1, 2), (2, 4))
        assert list(out.values()) == [0.0, 1.0, 2.0]
        assert list(out.values("execution_time")) == [0.0, 10.0, 20.0]
        record = out.records[0]
        assert record.workflow == "LV"
        assert record.objective == "computer_time"
        assert record.seed == 0

    def test_duplicate_rows_are_ignored(self, store):
        context = make_context()
        assert store.record(context, make_rows(3)) == 3
        assert store.record(context, make_rows(3)) == 0
        # Same config under a different (seed, repeat) is a new row.
        assert store.record(context, make_rows(3, seed=1)) == 3
        assert len(store.query(space_sig="space-a")) == 6

    def test_query_filters(self, store):
        store.record(make_context(), make_rows(2))
        store.record(
            make_context(workflow="HS", space_sig="space-b"), make_rows(2)
        )
        store.record(
            make_context(kind="component", label="lammps"),
            make_rows(2, offset=10),
        )
        assert len(store.query(space_sig="space-a")) == 2
        assert len(store.query(space_sig="space-b")) == 2
        assert len(store.query(space_sig="space-a", workflow="HS")) == 0
        comp = store.query(space_sig="space-a", kind="component")
        assert len(comp) == 2
        assert comp.records[0].label == "lammps"
        # Cross-workflow read: workflow=None matches any workflow.
        store.record(
            make_context(kind="component", label="lammps", workflow="HS"),
            make_rows(2, offset=20),
        )
        assert (
            len(store.query(space_sig="space-a", kind="component", label="lammps"))
            == 4
        )

    def test_query_order_is_insertion_order_and_stable(self, store):
        context = make_context()
        store.record(context, make_rows(5, offset=5))
        store.record(context, make_rows(5))
        first = store.query(space_sig="space-a").configs
        assert first[:2] == ((5, 10), (6, 12))
        for _ in range(3):
            assert store.query(space_sig="space-a").configs == first

    def test_limit(self, store):
        store.record(make_context(), make_rows(5))
        assert len(store.query(space_sig="space-a", limit=2)) == 2

    def test_schema_version_mismatch_is_refused(self, tmp_path):
        path = tmp_path / "old.db"
        MeasurementStore(path).close()
        conn = sqlite3.connect(path)
        with conn:
            conn.execute(
                "UPDATE meta SET value='999' WHERE key='schema_version'"
            )
        conn.close()
        with pytest.raises(StoreError, match="schema"):
            MeasurementStore(path)


class TestBinding:
    def test_record_workflow_and_components(self, store, lv, lv_pool):
        binding = StoreBinding(store, lv, "computer_time", seed=3)
        pairs = [
            (config, lv_pool.lookup(config))
            for config in lv_pool.configs[:4]
        ]
        assert binding.record_workflow(pairs) == 4
        # Replay of the same batch under the same session dedupes.
        assert binding.record_workflow(pairs) == 0
        out = store.query(
            space_sig=space_signature(lv.space),
            workflow=lv.name,
            objective="computer_time",
        )
        assert out.configs == tuple(lv_pool.configs[:4])
        np.testing.assert_allclose(
            out.values(),
            [m.objective("computer_time") for _, m in pairs],
        )

        label = lv.labels[0]
        n = binding.record_components(
            label,
            [(1, 1, 1), (2, 1, 1)],
            np.array([5.0, 6.0]),
            np.array([0.5, 0.6]),
        )
        assert n == 2
        comp = store.query(
            space_sig=space_signature(lv.app(label).space),
            kind="component",
            label=label,
        )
        assert len(comp) == 2
        assert comp.records[0].session == binding.session

    def test_distinct_repeats_are_distinct_rows(self, store, lv, lv_pool):
        pairs = [(lv_pool.configs[0], lv_pool.lookup(lv_pool.configs[0]))]
        a = StoreBinding(store, lv, "computer_time", seed=3, repeat=0)
        b = StoreBinding(store, lv, "computer_time", seed=3, repeat=1)
        assert a.record_workflow(pairs) == 1
        assert b.record_workflow(pairs) == 1


class TestModelRegistry:
    def test_training_key_sensitivity(self):
        X = np.arange(6, dtype=np.float64).reshape(3, 2)
        y = np.array([1.0, 2.0, 3.0])
        base = training_key("gbt", "lammps", "computer_time", X, y, "p")
        assert base == training_key("gbt", "lammps", "computer_time", X, y, "p")
        assert base != training_key("gbt", "voro", "computer_time", X, y, "p")
        assert base != training_key("gbt", "lammps", "computer_time", X + 1, y, "p")
        assert base != training_key("gbt", "lammps", "computer_time", X, y + 1, "p")
        assert base != training_key("gbt", "lammps", "computer_time", X, y, "q")

    def test_fit_or_load(self, store):
        registry = ModelRegistry(store)
        calls = []

        def fit():
            calls.append(1)
            return {"weights": [1, 2, 3]}

        first = registry.fit_or_load("key-1", fit)
        second = registry.fit_or_load("key-1", fit)
        assert first == second == {"weights": [1, 2, 3]}
        assert len(calls) == 1
        assert registry.misses == 1 and registry.hits == 1

    def test_unreadable_blob_triggers_refit(self, store):
        conn = sqlite3.connect(store.path)
        with conn:
            conn.execute(
                "INSERT INTO models(key, kind, payload, created_at)"
                " VALUES ('bad', 'model', X'00ff00', 'now')"
            )
        conn.close()
        assert store.get_model("bad") is None
        registry = ModelRegistry(store)
        assert registry.fit_or_load("bad", lambda: "fresh") == "fresh"


class TestMaintenance:
    def test_metadata_round_trip(self, store):
        store.set_metadata("cache:pool_a", {"event": "miss", "size": 10})
        store.set_metadata("cache:pool_a", {"event": "hit", "size": 10})
        assert store.get_metadata("cache:pool_a") == {
            "event": "hit",
            "size": 10,
        }
        assert store.get_metadata("missing") is None
        assert list(store.metadata()) == ["cache:pool_a"]

    def test_stats(self, store):
        store.record(make_context(), make_rows(3))
        store.record(
            make_context(kind="component", label="lammps"), make_rows(2)
        )
        stats = store.stats()
        assert stats["workflow_measurements"] == 3
        assert stats["component_measurements"] == 2
        assert stats["contexts"] == 2
        assert len(stats["by_context"]) == 2

    def test_gc_keeps_newest_sessions(self, store):
        context = make_context()
        store.record(
            context, [dict(r, session="old") for r in make_rows(3)]
        )
        store.record(
            context,
            [dict(r, session="new") for r in make_rows(3, offset=10)],
        )
        deleted = store.gc(keep_sessions=1)
        assert deleted["measurements"] == 3
        left = store.query(space_sig="space-a")
        assert {r.session for r in left} == {"new"}

    def test_gc_drops_orphan_contexts_and_models(self, store):
        store.record(make_context(), make_rows(2))
        store.put_model("k", {"m": 1})
        deleted = store.gc()
        assert deleted["models"] == 1
        assert deleted["contexts"] == 0
        assert store.get_model("k") is None

    def test_export(self, store):
        store.record(make_context(), make_rows(2))
        store.set_metadata("k", {"a": 1})
        store.put_model("m", [1])
        dump = store.export()
        assert len(dump["measurements"]) == 2
        assert dump["measurements"][0]["config"] == [0, 0]
        assert len(dump["contexts"]) == 1
        assert dump["metadata"] == {"k": {"a": 1}}
        assert dump["models"] == 1
        assert dump["meta"]["schema_version"] == str(1)


class TestTelemetrySpans:
    def test_write_and_query_spans_carry_row_counts(self, tmp_path):
        hub = telemetry.Telemetry()
        with telemetry.use(hub):
            store = MeasurementStore(tmp_path / "tel.db")
            store.record(make_context(), make_rows(3))
            store.query(space_sig="space-a")
            store.close()
        spans = {s.name: s for s in hub.spans}
        assert "store.open" in spans
        write = spans["store.write"]
        assert write.attributes["rows"] == 3
        assert write.attributes["inserted"] == 3
        assert spans["store.query"].attributes["rows"] == 3


# -- concurrent-writer stress -------------------------------------------------

N_WRITERS = 6
ROWS_PER_WRITER = 25


def _writer(path, worker: int) -> int:
    """One forked writer: interleave many single-row batches."""
    store = MeasurementStore(path, busy_timeout=10.0, retries=10)
    context = make_context()
    written = 0
    for i in range(ROWS_PER_WRITER):
        written += store.record(
            context,
            [
                {
                    "config": (worker, i),
                    "value": float(worker * 1000 + i),
                    "execution_seconds": 1.0,
                    "computer_core_hours": 0.1,
                    "seed": worker,
                    "session": f"worker-{worker}",
                }
            ],
        )
    store.close()
    return written


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs the fork start method",
)
class TestConcurrentWriters:
    def test_no_lost_rows_under_forked_writers(self, tmp_path):
        path = str(tmp_path / "stress.db")
        MeasurementStore(path).close()  # create the schema up front
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=N_WRITERS) as pool:
            written = pool.starmap(
                _writer, [(path, w) for w in range(N_WRITERS)]
            )
        # Every writer inserted all its rows; none raised StoreError or
        # surfaced "database is locked".
        assert written == [ROWS_PER_WRITER] * N_WRITERS
        store = MeasurementStore(path)
        out = store.query(space_sig="space-a")
        assert len(out) == N_WRITERS * ROWS_PER_WRITER
        assert len(set(out.configs)) == N_WRITERS * ROWS_PER_WRITER
        # Read-back order is the insertion order — stable across reads.
        assert out.configs == store.query(space_sig="space-a").configs
        store.close()

    def test_inherited_store_reopens_in_child(self, tmp_path):
        store = MeasurementStore(tmp_path / "fork.db")
        store.record(make_context(), make_rows(1))
        parent_conn = store._conn()
        ctx = multiprocessing.get_context("fork")
        queue = ctx.SimpleQueue()

        def child():
            # The child inherits the store object but must not share the
            # parent's sqlite connection: _conn() reopens per pid.
            store.record(make_context(), make_rows(1, seed=os.getpid()))
            queue.put(len(store.query(space_sig="space-a")))

        proc = ctx.Process(target=child)
        proc.start()
        seen = queue.get()
        proc.join()
        assert proc.exitcode == 0
        assert seen == 2
        assert store._conn() is parent_conn  # parent connection untouched
        assert len(store.query(space_sig="space-a")) == 2
        store.close()


class TestConcurrentThreads:
    """The threaded mirror of the forked-writer stress.

    Since connections became per-thread (not one process-wide
    serialized handle), threads sharing one ``MeasurementStore`` must
    interleave writes without losing rows and without Python-level
    serialization through a store lock.
    """

    def test_no_lost_rows_under_threaded_writers(self, tmp_path):
        store = MeasurementStore(
            tmp_path / "stress.db", busy_timeout=10.0, retries=10
        )
        context = make_context()
        written = [0] * N_WRITERS
        failures = []

        def writer(worker: int) -> None:
            try:
                for i in range(ROWS_PER_WRITER):
                    written[worker] += store.record(
                        context,
                        [
                            {
                                "config": (worker, i),
                                "value": float(worker * 1000 + i),
                                "execution_seconds": 1.0,
                                "computer_core_hours": 0.1,
                                "seed": worker,
                                "session": f"thread-{worker}",
                            }
                        ],
                    )
            except BaseException as exc:  # surfaced in the main thread
                failures.append(exc)

        threads = [
            threading.Thread(target=writer, args=(w,))
            for w in range(N_WRITERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert written == [ROWS_PER_WRITER] * N_WRITERS
        out = store.query(space_sig="space-a")
        assert len(out) == N_WRITERS * ROWS_PER_WRITER
        assert len(set(out.configs)) == N_WRITERS * ROWS_PER_WRITER
        store.close()

    def test_threads_get_distinct_reused_connections(self, store):
        main_conn = store._conn()
        assert store._conn() is main_conn  # same thread: cached
        seen = []

        def probe():
            seen.append((store._conn(), store._conn()))

        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
        (first, second), = seen
        assert first is second  # cached within the other thread too
        assert first is not main_conn  # but never shared across threads

    def test_close_invalidates_every_threads_connection(self, store):
        store.record(make_context(), make_rows(1))
        stale = store._conn()
        store.close()
        # The generation bump means the old cached handle is not
        # resurrected; a fresh connection serves the same data.
        fresh = store._conn()
        assert fresh is not stale
        assert len(store.query(space_sig="space-a")) == 1
        store.close()
