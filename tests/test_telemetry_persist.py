"""Persistent telemetry: store round-trips, regression gate, progress.

Three contracts under test:

* **Round-trip** — a hub flushed through
  :func:`repro.telemetry.persist.flush_run` reads back from the store
  with identical deterministic fields, and a parallel (``jobs=2``)
  fan-out aggregates to the same span names/counts/metric totals as
  its serial twin (wall-clock columns excepted).
* **Regression gate** — :func:`repro.telemetry.regress.diff_runs`
  trips on a synthetic slowdown beyond the threshold, passes on an
  identical re-run, ignores sub-jitter spans, and treats unreadable
  (newer-schema) runs as inconclusive-but-ok.
* **Progress** — heartbeat sinks throttle, flush their last event on
  close, and never touch tuning state (bit-identity is pinned in
  ``test_regression_pinned.py``).
"""

import io
import json
import time

import pytest

from repro import telemetry
from repro.experiments.runner import fanout
from repro.store.db import MeasurementStore
from repro.telemetry import progress, regress
from repro.telemetry.hub import NullTelemetry, Telemetry
from repro.telemetry.persist import (
    TELEMETRY_SCHEMA_VERSION,
    aggregate_spans,
    flush_run,
    histogram_percentiles,
    run_provenance,
)
from repro.telemetry.sinks import JsonlSink, load_jsonl


def _busy_hub() -> Telemetry:
    """A hub with nested spans, a counter, and a histogram."""
    hub = Telemetry()
    with hub.span("outer", category="t"):
        with hub.span("inner", category="t"):
            pass
        with hub.span("inner", category="t"):
            pass
    hub.counter("widgets").inc(3)
    hub.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
    hub.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
    return hub


# -- aggregation ---------------------------------------------------------------


def test_aggregate_spans_empty_and_disabled():
    assert aggregate_spans(Telemetry()) == []
    assert aggregate_spans(NullTelemetry()) == []


def test_aggregate_spans_self_time_and_order():
    hub = _busy_hub()
    rows = aggregate_spans(hub)
    by_name = {r["name"]: r for r in rows}
    assert set(by_name) == {"outer", "inner"}
    assert by_name["inner"]["count"] == 2
    outer = by_name["outer"]
    # Self time excludes the two direct children.
    assert outer["self_s"] <= outer["total_s"]
    assert outer["self_p90_s"] >= outer["self_p50_s"] >= 0.0
    # Sorted by descending self time, name-tiebroken — deterministic.
    assert rows == sorted(rows, key=lambda r: (-r["self_s"], r["name"]))


def test_histogram_percentiles_zero_sample_and_overflow():
    empty = {"count": 0, "buckets": [0.1, 1.0], "counts": [0, 0, 0]}
    assert histogram_percentiles(empty) == {"p50": None, "p90": None, "p99": None}
    # Every observation past the last bound: no finite estimate.
    overflow = {"count": 4, "buckets": [0.1, 1.0], "counts": [0, 0, 4]}
    assert histogram_percentiles(overflow) == {
        "p50": None, "p90": None, "p99": None,
    }
    mixed = {"count": 4, "buckets": [0.1, 1.0], "counts": [2, 2, 0]}
    assert histogram_percentiles(mixed)["p50"] == 0.1
    assert histogram_percentiles(mixed)["p90"] == 1.0


# -- store round-trip ----------------------------------------------------------


def test_flush_run_roundtrip(tmp_path):
    store = MeasurementStore(tmp_path / "t.db")
    hub = _busy_hub()
    key = flush_run(store, hub, label="first", session="test", suite="s1")
    assert key
    snap = regress.load_run(store, key)
    assert snap.run["label"] == "first"
    assert snap.run["session"] == "test"
    assert snap.run["suite"] == "s1"
    assert snap.run["schema_version"] == TELEMETRY_SCHEMA_VERSION
    assert {s["name"] for s in snap.spans} == {"outer", "inner"}
    metrics = {m["name"]: m for m in snap.metrics}
    assert metrics["widgets"]["value"] == 3.0
    hist = metrics["lat"]
    assert hist["kind"] == "histogram"
    assert hist["payload"]["count"] == 2
    assert hist["payload"]["p50"] == 0.1
    store.close()


def test_flush_run_disabled_hub_is_noop(tmp_path):
    store = MeasurementStore(tmp_path / "t.db")
    assert flush_run(store, NullTelemetry()) is None
    assert store.telemetry_runs() == []
    store.close()


def test_flush_run_empty_hub_records_row(tmp_path):
    store = MeasurementStore(tmp_path / "t.db")
    key = flush_run(store, Telemetry(), label="empty")
    snap = regress.load_run(store, key)
    assert snap.spans == ()
    assert "no spans recorded" in regress.render_run(snap)
    store.close()


def test_load_run_resolution_and_missing(tmp_path):
    store = MeasurementStore(tmp_path / "t.db")
    k1 = flush_run(store, _busy_hub(), label="one")
    k2 = flush_run(store, _busy_hub(), label="two")
    assert regress.load_run(store, None).run_key == k2  # newest
    assert regress.load_run(store, "one").run_key == k1  # by label
    assert regress.load_run(store, k1).run_key == k1  # by key
    with pytest.raises(LookupError, match="no telemetry run"):
        regress.load_run(store, "nonesuch")
    store.close()


def _span_worker(context, index):
    hub = telemetry.get()
    with hub.span("task", category="t"):
        hub.counter("tasks").inc()
    return index


@pytest.mark.parametrize("jobs", [1, 2])
def test_parallel_flush_matches_serial(tmp_path, jobs):
    """Serial and ``--jobs 2`` persist identical deterministic columns."""
    store = MeasurementStore(tmp_path / "t.db")
    hub = Telemetry()
    with telemetry.use(hub):
        fanout(_span_worker, None, 4, jobs=jobs)
    key = flush_run(store, hub, label=f"jobs{jobs}")
    snap = regress.load_run(store, key)
    # The runner wraps each task in its own span; both aggregate
    # identically across jobs settings.
    assert sorted((s["name"], s["count"]) for s in snap.spans) == [
        ("runner.task", 4),
        ("task", 4),
    ]
    assert {m["name"]: m["value"] for m in snap.metrics} == {"tasks": 4.0}
    store.close()


# -- regression gate -----------------------------------------------------------


def _fake_run(store, spans, label=""):
    run = run_provenance(label=label)
    store.record_telemetry_run(run, spans, [])
    return regress.load_run(store, run["run_key"])


def _span(name, p50, p90, self_s=1.0):
    return {
        "name": name, "count": 10, "total_s": self_s, "self_s": self_s,
        "self_p50_s": p50, "self_p90_s": p90,
    }


def test_diff_identical_runs_pass(tmp_path):
    store = MeasurementStore(tmp_path / "t.db")
    spans = [_span("fit", 0.010, 0.020), _span("predict", 0.005, 0.008)]
    base = _fake_run(store, spans, "base")
    cur = _fake_run(store, spans, "cur")
    report = regress.diff_runs(base, cur)
    assert report["ok"] and not report["regressions"]
    assert "PASS" in regress.render_diff(report)
    store.close()


def test_diff_flags_regression_beyond_threshold(tmp_path):
    store = MeasurementStore(tmp_path / "t.db")
    base = _fake_run(store, [_span("fit", 0.010, 0.020)], "base")
    cur = _fake_run(store, [_span("fit", 0.010, 0.030)], "cur")  # +50% p90
    report = regress.diff_runs(base, cur, threshold=0.20)
    assert not report["ok"]
    assert report["regressions"] == ["fit"]
    assert "REGRESSION" in regress.render_diff(report)
    # The same delta under a looser gate passes.
    assert regress.diff_runs(base, cur, threshold=0.60)["ok"]
    store.close()


def test_diff_ignores_sub_jitter_spans(tmp_path):
    store = MeasurementStore(tmp_path / "t.db")
    # p90 below MIN_GATE_SECONDS: a 10x blowup is still scheduler noise.
    base = _fake_run(store, [_span("tiny", 0.00001, 0.0001)], "base")
    cur = _fake_run(store, [_span("tiny", 0.0001, 0.001)], "cur")
    assert regress.diff_runs(base, cur)["ok"]
    store.close()


def test_diff_reports_removed_spans_informationally(tmp_path):
    store = MeasurementStore(tmp_path / "t.db")
    base = _fake_run(store, [_span("gone", 0.01, 0.02)], "base")
    cur = _fake_run(store, [_span("new", 0.01, 0.02)], "cur")
    report = regress.diff_runs(base, cur)
    assert report["ok"]
    assert report["spans"][0]["status"] == "removed"
    assert any("only in current" in n for n in report["notes"])
    store.close()


def test_newer_schema_run_is_inconclusive_not_fatal(tmp_path):
    store = MeasurementStore(tmp_path / "t.db")
    run = run_provenance(label="future")
    run["schema_version"] = TELEMETRY_SCHEMA_VERSION + 1
    store.record_telemetry_run(run, [_span("fit", 0.01, 0.02)], [])
    snap = regress.load_run(store, run["run_key"])
    assert snap.skipped_reason and snap.spans == ()
    assert "SKIPPED" in regress.render_run(snap)
    base = _fake_run(store, [_span("fit", 0.01, 0.02)], "base")
    report = regress.diff_runs(base, snap)
    assert report["ok"] and report["inconclusive"]
    store.close()


def test_named_baseline_roundtrip(tmp_path):
    store = MeasurementStore(tmp_path / "t.db")
    k1 = flush_run(store, _busy_hub(), label="one")
    flush_run(store, _busy_hub(), label="two")
    marker = regress.set_baseline(store, "main", "one")
    assert marker["run_key"] == k1
    assert regress.load_run(store, "main").run_key == k1
    store.close()


# -- BENCH floors --------------------------------------------------------------


def test_check_floors_on_committed_bench_files():
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent
    report = regress.check_floors(
        [root / "BENCH_ml.json", root / "BENCH_des.json"]
    )
    assert report["checks"], "floor walker found no floor/speedup pairs"
    assert report["ok"], f"committed floors violated: {report['regressions']}"
    assert "PASS" in regress.render_floors(report)


def test_check_floors_flags_violation(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"kern": {"floor": 5.0, "speedup": 1.2}}))
    report = regress.check_floors([path])
    assert not report["ok"]
    assert report["regressions"] == ["bench.json/kern"]
    assert "BELOW FLOOR" in regress.render_floors(report)


def test_check_floors_unreadable_file(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text("{not json")
    report = regress.check_floors([path])
    assert not report["ok"]


# -- progress sinks ------------------------------------------------------------


def test_jsonl_progress_emits_parseable_heartbeats():
    buf = io.StringIO()
    sink = progress.JsonlProgress(stream=buf, min_interval=0.0)
    sink.driver_cycle(algorithm="CEAL", workflow="LV", iteration=2,
                      runs_used=4, budget=8, best_value=1.5, fit_seconds=0.25)
    sink.suite_cell(suite="s", done=1, total=2, cached=0)
    sink.close()
    lines = [json.loads(line) for line in buf.getvalue().splitlines()]
    assert lines[0]["type"] == "meta"
    assert lines[0]["schema"] == "repro-progress"
    assert lines[1]["type"] == "driver" and lines[1]["runs_used"] == 4
    assert lines[2]["type"] == "suite" and lines[2]["done"] == 1


def test_progress_throttle_and_close_flush():
    buf = io.StringIO()
    sink = progress.JsonlProgress(stream=buf, min_interval=3600.0)
    sink.suite_cell(suite="s", done=0, total=10)  # first: renders
    sink.suite_cell(suite="s", done=1, total=10)  # throttled
    sink.suite_cell(suite="s", done=2, total=10)  # throttled
    payloads = [json.loads(x) for x in buf.getvalue().splitlines()]
    assert [p["done"] for p in payloads if p["type"] == "suite"] == [0]
    sink.close()  # flushes the freshest throttled event, once
    payloads = [json.loads(x) for x in buf.getvalue().splitlines()]
    assert [p["done"] for p in payloads if p["type"] == "suite"] == [0, 2]
    sink.close()  # idempotent: nothing left to flush
    assert len(buf.getvalue().splitlines()) == len(payloads)


def test_progress_terminal_event_bypasses_throttle():
    buf = io.StringIO()
    sink = progress.JsonlProgress(stream=buf, min_interval=3600.0)
    sink.suite_cell(suite="s", done=9, total=10)
    sink.suite_cell(suite="s", done=10, total=10)  # final: bypasses
    dones = [
        json.loads(x)["done"]
        for x in buf.getvalue().splitlines()
        if json.loads(x)["type"] == "suite"
    ]
    assert dones == [9, 10]


def test_suite_eta_estimate(monkeypatch):
    buf = io.StringIO()
    sink = progress.JsonlProgress(stream=buf, min_interval=0.0)
    clock = iter([0.0, 0.0, 10.0, 10.0])
    monkeypatch.setattr(time, "perf_counter", lambda: next(clock))
    sink.suite_cell(suite="s", done=2, total=6, cached=2)  # baseline: 2 cached
    sink.suite_cell(suite="s", done=4, total=6, cached=2)  # 2 executed in 10s
    events = [json.loads(x) for x in buf.getvalue().splitlines()]
    # 5 s/cell over the executed cells, 2 remaining -> 10 s.
    assert events[-1]["eta_seconds"] == pytest.approx(10.0)


def test_ascii_progress_renders_meter_and_finishes_line():
    buf = io.StringIO()
    sink = progress.AsciiProgress(stream=buf, min_interval=0.0, width=8)
    sink.suite_cell(suite="s", done=2, total=4, cached=1)
    sink.driver_cycle(algorithm="RS", workflow="LV", iteration=1,
                      runs_used=2, budget=4, best_value=3.0, fit_seconds=0.1)
    sink.close()
    text = buf.getvalue()
    assert "2/4 cells" in text
    assert "[" in text and "]" in text
    assert text.endswith("\n")


def test_null_progress_is_inert():
    sink = progress.NULL_PROGRESS
    assert not sink.enabled
    sink.driver_cycle(algorithm="x")
    sink.suite_cell(done=1)
    sink.close()


def test_make_sink_picks_jsonl_for_pipes():
    assert isinstance(progress.make_sink(io.StringIO()), progress.JsonlProgress)

    class Tty(io.StringIO):
        def isatty(self):
            return True

    assert isinstance(progress.make_sink(Tty()), progress.AsciiProgress)


# -- JSONL trace reader hardening ---------------------------------------------


def test_load_jsonl_roundtrip_and_corruption(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(path)
    hub = Telemetry(sinks=[sink])
    with hub.span("work", category="t"):
        pass
    hub.close()
    with open(path, "a") as fh:
        fh.write("{corrupt\n")
    data = load_jsonl(path)
    assert data["meta"]["schema"] == "repro-telemetry"
    assert [s["name"] for s in data["spans"]] == ["work"]
    assert data["ignored"] == 1
    assert data["notes"] == []


def test_load_jsonl_skips_unknown_schema_version(tmp_path):
    path = tmp_path / "future.jsonl"
    path.write_text(
        '{"type":"meta","schema":"repro-telemetry","version":99}\n'
        '{"type":"span","name":"x"}\n'
    )
    data = load_jsonl(path)
    assert data["spans"] == []
    assert data["ignored"] == 1
    assert any("99" in note for note in data["notes"])


def test_load_jsonl_missing_meta_noted(tmp_path):
    path = tmp_path / "headless.jsonl"
    path.write_text('{"type":"span","name":"x","cat":"t"}\n')
    data = load_jsonl(path)
    assert data["meta"] is None
    assert any("no meta" in note for note in data["notes"])
    assert [s["name"] for s in data["spans"]] == ["x"]


# -- summarize hardening -------------------------------------------------------


def test_summarize_empty_and_disabled_hubs():
    assert "no spans" in telemetry.summarize(Telemetry())
    assert "disabled" in telemetry.summarize(NullTelemetry())


def test_summarize_zero_sample_histogram():
    hub = Telemetry()
    hub.histogram("empty", buckets=(0.1,))  # registered, never observed
    text = telemetry.summarize(hub)
    assert "empty" in text  # reported, not raised


# -- viz helpers ---------------------------------------------------------------


def test_render_meter_bounds():
    from repro.experiments.viz import render_meter

    assert render_meter(0, 4, 4) == "[░░░░]"
    assert render_meter(4, 4, 4) == "[████]"
    assert render_meter(9, 4, 4) == "[████]"  # clamps overshoot
    assert render_meter(1, 0, 4) == "[░░░░]"  # indeterminate
    assert render_meter(1, None, 4) == "[░░░░]"


def test_render_report_ci_bars():
    from repro.experiments.viz import render_report

    report = {
        "suite": "demo", "cells": 8, "confidence": 0.95,
        "groups": [{
            "workflow": "LV", "objective": "execution_time", "budget": 8,
            "repeats": 4, "pool_seed": 7,
            "algorithms": {
                "RS": {"n": 4, "normalized": {
                    "mean": 1.4, "lo": 1.2, "hi": 1.6, "n": 4}},
                "CEAL": {"n": 4, "normalized": {
                    "mean": 1.1, "lo": 1.05, "hi": 1.15, "n": 4}},
            },
            "comparisons": [{
                "a": "RS", "b": "CEAL", "metric": "normalized",
                "permutation": {"p": 0.01},
            }],
        }],
    }
    text = render_report(report)
    assert "RS" in text and "CEAL" in text
    assert "1.4000 [1.2000, 1.6000]" in text
    assert "significant" in text and "p=0.01" in text
    assert render_report({"groups": []}) == "(empty report)"


# -- CLI -----------------------------------------------------------------------


def _cli(argv):
    from repro.cli import main

    out = io.StringIO()
    return main(argv, out=out), out.getvalue()


def test_cli_telemetry_diff_exit_codes(tmp_path):
    store_path = str(tmp_path / "t.db")
    store = MeasurementStore(store_path)
    _fake_run(store, [_span("fit", 0.010, 0.020)], "base")
    _fake_run(store, [_span("fit", 0.010, 0.030)], "slow")
    store.close()
    rc, text = _cli(["telemetry", "baseline", store_path, "base",
                     "--name", "main"])
    assert rc == 0 and "baseline main" in text
    rc, text = _cli(["telemetry", "diff", store_path, "slow",
                     "--baseline", "main"])
    assert rc == 1 and "REGRESSION" in text
    rc, text = _cli(["telemetry", "diff", store_path, "base",
                     "--baseline", "main"])
    assert rc == 0 and "PASS" in text
    rc, _ = _cli(["telemetry", "diff", store_path, "base"])
    assert rc == 2  # --baseline is required
    rc, _ = _cli(["telemetry", "report", str(tmp_path / "absent.db")])
    assert rc == 2
    rc, text = _cli(["telemetry", "report", store_path])
    assert rc == 0 and "fit" in text


def test_cli_telemetry_floors(tmp_path):
    good = tmp_path / "good.json"
    good.write_text(json.dumps({"k": {"floor": 1.0, "speedup": 2.0}}))
    rc, text = _cli(["telemetry", "diff", "--floors", str(good)])
    assert rc == 0 and "PASS" in text
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"k": {"floor": 5.0, "speedup": 2.0}}))
    rc, text = _cli(["telemetry", "diff", "--floors", str(bad)])
    assert rc == 1 and "BELOW FLOOR" in text


def test_cli_telemetry_store_flag_persists_run(tmp_path):
    store_path = str(tmp_path / "t.db")
    rc, _ = _cli(["reproduce", "--target", "table1",
                  "--telemetry-store", store_path,
                  "--telemetry-label", "t1"])
    assert rc == 0
    store = MeasurementStore(store_path)
    runs = store.telemetry_runs()
    assert [r["label"] for r in runs] == ["t1"]
    assert runs[0]["session"] == "reproduce"
    store.close()
