"""Tests for the declarative experiment-suite engine.

Covers the declarative algorithm layer (``repro.experiments.presets``),
matrix compilation and content-hash cell keys, the cached-cell codec,
store-backed resume (interrupt → re-run → bit-identical report), spec
files, the statistical report schema — and bit-identity of the rebased
legacy drivers against pre-refactor pins (``tests/data/pinned_suite.json``,
regenerated only intentionally via ``tests/data/make_pinned_suite.py``).
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.core.ceal import Ceal, CealSettings
from repro.experiments.headline import headline_claims
from repro.experiments.figures import fig05_spec, fig08_practicality
from repro.experiments.presets import (
    ALGORITHM_KINDS,
    AlgorithmFactor,
    ceal_factor,
    ceal_settings_for,
    factor_from_ceal_settings,
    history_factors,
    history_specs,
    no_history_factors,
    no_history_specs,
    resolve_algorithm,
)
from repro.experiments.runner import trial_seed
from repro.experiments.sensitivity import sweep_ceal
from repro.experiments.suite import (
    SUITE_SCHEMA_VERSION,
    SuiteGroup,
    SuiteIncompleteError,
    SuiteSpec,
    _metrics_from_payload,
    _metrics_payload,
    compile_matrix,
    load_spec,
    run_suite,
    spec_from_dict,
)

PINS = json.loads(
    (Path(__file__).parent / "data" / "pinned_suite.json").read_text()
)
REPEATS = PINS["repeats"]
POOL = PINS["pool_size"]
SEED = PINS["seed"]

EXAMPLES = Path(__file__).parent.parent / "examples" / "suites"

needs_toml = pytest.mark.skipif(
    importlib.util.find_spec("tomllib") is None
    and importlib.util.find_spec("tomli") is None,
    reason="no TOML parser on this Python (3.10 without tomli)",
)


def small_spec() -> SuiteSpec:
    """The pinned ``run_trials`` batch as a suite spec (4 cells)."""
    return SuiteSpec(
        name="small",
        groups=(
            SuiteGroup(
                workflow="LV",
                objective="execution_time",
                budget=8,
                algorithms=(
                    AlgorithmFactor.make("RS", "rs"),
                    AlgorithmFactor.make("CEAL", "ceal", use_history=True),
                ),
                repeats=REPEATS,
                pool_size=POOL,
                pool_seed=SEED,
            ),
        ),
    )


@pytest.fixture(scope="module")
def small_result():
    return run_suite(small_spec())


# -- declarative algorithm layer (presets) -------------------------------------------


class TestAlgorithmFactor:
    def test_make_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown algorithm kind"):
            AlgorithmFactor.make("X", "gradient-descent")

    def test_params_sorted_and_hashable(self):
        a = AlgorithmFactor.make("C", "ceal", use_history=True, iterations=4)
        b = AlgorithmFactor.make("C", "ceal", iterations=4, use_history=True)
        assert a == b
        assert hash(a) == hash(b)
        assert a.param_dict() == {"use_history": True, "iterations": 4}
        assert a.identity()["params"] == [["iterations", 4], ["use_history", True]]

    def test_registry_resolves_every_kind(self):
        for kind in ALGORITHM_KINDS:
            factor = AlgorithmFactor.make("X", kind)
            spec = resolve_algorithm(factor, "LV", 50)
            assert spec.name == "X"
            assert spec.factory() is not None

    def test_resolve_rejects_unknown_kind(self):
        # Bypass .make's validation: the resolver guards independently.
        factor = AlgorithmFactor(name="X", kind="nope")
        with pytest.raises(ValueError, match="unknown algorithm kind"):
            resolve_algorithm(factor)

    def test_ceal_explicit_settings(self):
        factor = AlgorithmFactor.make(
            "C", "ceal", use_history=False, iterations=3
        )
        algo = resolve_algorithm(factor).factory()
        assert isinstance(algo, Ceal)
        assert algo.settings == CealSettings(use_history=False, iterations=3)

    def test_ceal_preset_requires_context(self):
        factor = ceal_factor("CEAL", preset=True)
        with pytest.raises(ValueError, match="resolution context"):
            resolve_algorithm(factor)

    def test_ceal_preset_rejects_explicit_params(self):
        factor = AlgorithmFactor.make("C", "ceal", preset=True, iterations=3)
        with pytest.raises(ValueError, match="does not combine"):
            resolve_algorithm(factor, "LV", 50)

    def test_ceal_preset_selects_per_cell_settings(self):
        factor = ceal_factor("CEAL", preset=True, use_history=False)
        for workflow, budget in (("GP", 25), ("LV", 50), ("GP", 100)):
            algo = resolve_algorithm(factor, workflow, budget).factory()
            assert algo.settings == ceal_settings_for(workflow, budget, False)
        # GP at a small budget actually differs from the default.
        gp_small = resolve_algorithm(factor, "GP", 25).factory()
        assert gp_small.settings.iterations == 6

    def test_factor_from_ceal_settings_roundtrip(self):
        settings = CealSettings(
            use_history=False, iterations=3, random_fraction=0.25
        )
        factor = factor_from_ceal_settings("S", settings)
        algo = resolve_algorithm(factor).factory()
        assert algo.settings == settings


class TestSharedComparisonSets:
    def test_no_history_factors_names(self):
        assert [f.name for f in no_history_factors()] == [
            "RS", "GEIST", "AL", "CEAL",
        ]

    def test_history_factors_names(self):
        assert [f.name for f in history_factors()] == ["CEAL", "ALpH"]

    def test_no_history_specs(self):
        specs = no_history_specs("LV", 50)
        assert [s.name for s in specs] == ["RS", "GEIST", "AL", "CEAL"]
        assert all(not s.needs_history for s in specs)
        ceal = specs[-1].factory()
        assert ceal.settings == ceal_settings_for("LV", 50, False)

    def test_no_history_specs_apply_presets(self):
        ceal = no_history_specs("GP", 25)[-1].factory()
        assert ceal.settings == ceal_settings_for("GP", 25, False)
        assert ceal.settings.iterations == 6

    def test_history_specs(self):
        specs = history_specs()
        assert [s.name for s in specs] == ["CEAL", "ALpH"]
        assert all(s.needs_history for s in specs)


# -- matrix compilation and cell keys ------------------------------------------------


class TestCompileMatrix:
    def test_order_group_algorithm_repeat(self):
        spec = fig05_spec(repeats=3, pool_size=POOL, seed=SEED)
        cells = compile_matrix(spec)
        n_algos = len(spec.groups[0].algorithms)
        assert len(cells) == len(spec.groups) * n_algos * 3
        expected = [
            (gi, f.name, rep)
            for gi, g in enumerate(spec.groups)
            for f in g.algorithms
            for rep in range(g.repeats)
        ]
        assert [
            (c.group_index, c.algorithm.name, c.repeat) for c in cells
        ] == expected

    def test_trial_seed_scheme(self):
        cells = compile_matrix(small_spec())
        for cell in cells:
            assert cell.seed == trial_seed(SEED, cell.algorithm.name, cell.repeat)

    def test_sweep_seed_scheme(self):
        group = small_spec().groups[0]
        group = SuiteGroup(
            **{**group.__dict__, "seed_scheme": "sweep"}
        )
        cells = compile_matrix(SuiteSpec(name="s", groups=(group,)))
        for cell in cells:
            assert cell.seed == SEED + 37 * cell.repeat

    def test_keys_deterministic(self):
        a = [c.key() for c in compile_matrix(small_spec())]
        b = [c.key() for c in compile_matrix(small_spec())]
        assert a == b
        assert all(len(k) == 64 for k in a)
        assert len(set(a)) == len(a)  # no two cells collide

    def test_keys_sensitive_to_every_factor(self):
        from dataclasses import replace

        base = compile_matrix(small_spec())[0]
        variants = [
            replace(base, budget=9),
            replace(base, seed=base.seed + 1),
            replace(base, pool_seed=base.pool_seed + 1),
            replace(base, pool_size=base.pool_size + 1),
            replace(base, noise_sigma=0.06),
            replace(base, objective="computer_time"),
            replace(
                base,
                algorithm=AlgorithmFactor.make("RS", "rs", use_history=True),
            ),
        ]
        keys = {base.key()} | {v.key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_group_validation(self):
        good = small_spec().groups[0]
        with pytest.raises(ValueError, match="seed scheme"):
            SuiteGroup(**{**good.__dict__, "seed_scheme": "lottery"})
        with pytest.raises(ValueError, match="at least one repeat"):
            SuiteGroup(**{**good.__dict__, "repeats": 0})
        dupes = (
            AlgorithmFactor.make("RS", "rs"),
            AlgorithmFactor.make("RS", "geist"),
        )
        with pytest.raises(ValueError, match="duplicate algorithm names"):
            SuiteGroup(**{**good.__dict__, "algorithms": dupes})


class TestCellCodec:
    def test_roundtrip(self, small_result):
        for trial in small_result.trials:
            payload = _metrics_payload(trial)
            json.loads(json.dumps(payload))  # JSON-stable
            back = _metrics_from_payload(payload)
            assert _metrics_payload(back) == payload


# -- bit-identity with the pre-refactor drivers --------------------------------------


class TestEngineMatchesPins:
    """The rebased drivers reproduce pre-refactor outputs exactly."""

    def test_run_trials_equivalence(self, small_result):
        assert [
            _metrics_payload(t) for t in small_result.trials
        ] == PINS["run_trials"]

    def test_headline_pinned(self):
        rows = headline_claims(repeats=REPEATS, pool_size=POOL, seed=SEED).rows
        assert rows == PINS["headline"]

    def test_fig08_pinned(self):
        rows = fig08_practicality(
            repeats=REPEATS, pool_size=POOL, seed=SEED
        ).rows
        assert rows == PINS["fig08"]

    def test_sweep_pinned(self):
        settings = [
            ("I=2", CealSettings(use_history=False, iterations=2)),
            ("I=4 (hist)", CealSettings(use_history=True, iterations=4)),
        ]
        rows = sweep_ceal(
            settings, workflow_name="LV", objective_name="computer_time",
            budget=10, repeats=REPEATS, pool_size=POOL, seed=SEED,
        )
        assert rows == PINS["sweep"]


# -- store-backed resume -------------------------------------------------------------


class TestResume:
    def test_interrupt_resume_bit_identical(self, small_result, tmp_path):
        spec = small_spec()
        db = str(tmp_path / "suite.db")
        baseline = json.dumps(small_result.report(), sort_keys=True)

        # "Interrupt" after 2 of 4 cells (deterministic stand-in for a kill).
        partial = run_suite(spec, store=db, max_cells=2)
        assert partial.cells_run == 2
        assert partial.cells_cached == 0
        assert not partial.complete
        with pytest.raises(SuiteIncompleteError, match="2 of 4"):
            partial.report()

        # Resume: the 2 finished cells come from the store, untouched.
        resumed = run_suite(spec, store=db)
        assert resumed.cells_cached == 2
        assert resumed.cells_run == 2
        assert resumed.complete
        assert json.dumps(resumed.report(), sort_keys=True) == baseline

        # Fully cached re-run: zero cells executed, same report bytes.
        cached = run_suite(spec, store=db)
        assert cached.cells_run == 0
        assert cached.cells_cached == 4
        assert json.dumps(cached.report(), sort_keys=True) == baseline

    def test_changed_spec_misses_cache(self, tmp_path):
        from dataclasses import replace

        spec = small_spec()
        db = str(tmp_path / "suite.db")
        first = run_suite(spec, store=db)
        assert first.cells_run == 4

        changed = SuiteSpec(
            name=spec.name,
            groups=(replace(spec.groups[0], noise_sigma=0.06),),
        )
        second = run_suite(changed, store=db, max_cells=0)
        assert second.cells_cached == 0  # every key differs → all miss

    def test_corrupted_cache_entry_is_a_miss(self, tmp_path):
        from repro.experiments.suite import _CELL_KEY_PREFIX
        from repro.store.db import MeasurementStore

        spec = small_spec()
        db = str(tmp_path / "suite.db")
        run_suite(spec, store=db)
        cell = compile_matrix(spec)[0]
        store = MeasurementStore(db)
        key = _CELL_KEY_PREFIX + cell.key()
        payload = store.get_metadata(key)
        payload["cell"]["budget"] = 99  # stored identity no longer matches
        store.set_metadata(key, payload)
        store.close()

        again = run_suite(spec, store=db, max_cells=0)
        assert again.cells_cached == 3  # the tampered cell re-pends


# -- spec files ----------------------------------------------------------------------


class TestSpecFiles:
    DATA = {
        "suite": {
            "name": "demo",
            "repeats": 3,
            "pool_size": 200,
            "pool_seeds": [1, 2],
            "seed_scheme": "sweep",
        },
        "factors": {
            "workflows": ["LV"],
            "objectives": ["execution_time", "computer_time"],
            "budgets": [10, 20],
        },
        "algorithms": [
            {"name": "RS", "kind": "rs"},
            {"name": "CEAL", "kind": "ceal", "params": {"use_history": True}},
        ],
    }

    def test_factorial_expansion(self):
        spec = spec_from_dict(self.DATA)
        assert spec.name == "demo"
        # 1 workflow × 2 objectives × 2 budgets × 2 pool seeds.
        assert len(spec.groups) == 8
        assert {(g.objective, g.budget, g.pool_seed) for g in spec.groups} == {
            (o, b, s)
            for o in ("execution_time", "computer_time")
            for b in (10, 20)
            for s in (1, 2)
        }
        for g in spec.groups:
            assert g.repeats == 3
            assert g.pool_size == 200
            assert g.seed_scheme == "sweep"
            assert [f.name for f in g.algorithms] == ["RS", "CEAL"]
        assert spec.groups[0].algorithms[1].param_dict() == {
            "use_history": True
        }

    def test_missing_sections_rejected(self):
        with pytest.raises(ValueError, match=r"no \[\[algorithms\]\]"):
            spec_from_dict({**self.DATA, "algorithms": []})
        broken = dict(self.DATA)
        broken["factors"] = {"objectives": ["execution_time"], "budgets": [10]}
        with pytest.raises(ValueError, match="factors.workflows"):
            spec_from_dict(broken)

    @needs_toml
    def test_load_smoke_toml(self):
        spec = load_spec(EXAMPLES / "smoke.toml")
        assert spec.name == "smoke"
        assert len(spec.groups) == 1
        group = spec.groups[0]
        assert (group.workflow, group.objective, group.budget) == (
            "LV", "execution_time", 8,
        )
        assert group.repeats == 2
        assert group.pool_size == 150
        assert group.pool_seed == 7
        assert [f.name for f in group.algorithms] == ["RS", "CEAL"]

    @needs_toml
    def test_load_headline_toml(self):
        spec = load_spec(EXAMPLES / "headline_ci.toml")
        assert len(spec.groups) == 2  # two objectives
        assert all(g.repeats == 20 for g in spec.groups)
        assert [f.kind for f in spec.groups[0].algorithms] == [
            "rs", "geist", "ceal",
        ]

    def test_load_json(self, tmp_path):
        path = tmp_path / "demo.json"
        path.write_text(json.dumps(self.DATA))
        assert load_spec(path) == spec_from_dict(self.DATA)

    def test_rejects_unknown_suffix(self, tmp_path):
        path = tmp_path / "demo.yaml"
        path.write_text("")
        with pytest.raises(ValueError, match="toml or .json"):
            load_spec(path)


# -- statistical report --------------------------------------------------------------


class TestReport:
    @pytest.fixture(scope="class")
    def report(self, small_result):
        return small_result.report()

    def test_schema(self, report):
        assert report["schema_version"] == SUITE_SCHEMA_VERSION
        assert report["suite"] == "small"
        assert report["confidence"] == 0.95
        assert report["cells"] == 4
        assert len(report["groups"]) == 1
        json.loads(json.dumps(report))  # JSON-serialisable throughout

    def test_per_algorithm_cis(self, report):
        algos = report["groups"][0]["algorithms"]
        assert set(algos) == {"RS", "CEAL"}
        for entry in algos.values():
            assert entry["n"] == REPEATS
            for metric in (
                "normalized", "best_value", "cost", "mdape_all", "mdape_top2",
            ):
                ci = entry[metric]
                assert ci["lo"] <= ci["mean"] <= ci["hi"]
                assert ci["n"] == REPEATS
            recall = entry["recall"]
            assert recall["top_n"] == 10
            assert len(recall["mean"]) == 10
            assert 0.0 <= recall["at_top"]["mean"] <= 100.0

    def test_practicality_block(self, report):
        # (LV, execution_time) has an expert config → block present.
        for entry in report["groups"][0]["algorithms"].values():
            practicality = entry["practicality"]
            assert set(practicality) == {
                "least_uses", "recouped_fraction", "expert_value",
            }
            assert 0.0 <= practicality["recouped_fraction"] <= 1.0

    def test_pairwise_comparisons(self, report):
        comparisons = report["groups"][0]["comparisons"]
        # 1 algorithm pair × 3 paired metrics.
        assert len(comparisons) == 3
        assert {c["metric"] for c in comparisons} == {
            "normalized", "best_value", "recall_at_top",
        }
        for c in comparisons:
            assert {c["a"], c["b"]} == {"RS", "CEAL"}
            assert 0.0 <= c["permutation"]["p"] <= 1.0
            assert 0.0 <= c["wilcoxon"]["p"] <= 1.0

    def test_parallel_matches_serial(self, small_result):
        parallel = run_suite(small_spec(), jobs=2)
        assert json.dumps(parallel.report(), sort_keys=True) == json.dumps(
            small_result.report(), sort_keys=True
        )
