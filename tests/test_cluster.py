"""Unit tests for the simulated cluster substrate."""

import pytest

from repro.cluster.allocation import place_component
from repro.cluster.contention import (
    fabric_share,
    memory_bandwidth_slowdown,
    nic_share,
)
from repro.cluster.machine import Machine, NodeSpec, default_machine
from repro.cluster.topology import FabricTopology


class TestMachine:
    def test_paper_defaults(self):
        m = default_machine()
        assert m.node.cores == 36
        assert m.max_nodes == 32
        assert m.total_cores == 32 * 36

    def test_core_hours_definition(self):
        # 1 hour on 1 node of 36 cores = 36 core-hours
        m = Machine()
        assert m.core_hours(3600.0, 1) == pytest.approx(36.0)
        assert m.core_hours(1800.0, 2) == pytest.approx(36.0)

    def test_core_hours_rejects_bad_nodes(self):
        with pytest.raises(ValueError):
            Machine().core_hours(10.0, 0)

    def test_invalid_node_spec(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=0)
        with pytest.raises(ValueError):
            NodeSpec(memory_gb=-1)


class TestPlacement:
    def test_nodes_ceil(self):
        p = place_component(70, 35)
        assert p.nodes == 2
        assert p.busy_cores_per_node == 35

    def test_threads_count_in_busy_cores(self):
        p = place_component(36, 18, 2)
        assert p.busy_cores_per_node == 36
        assert p.total_workers == 72

    def test_validate_rejects_oversubscription(self):
        m = Machine()
        with pytest.raises(ValueError, match="busy cores"):
            place_component(36, 18, 3).validate(m)

    def test_validate_rejects_too_many_nodes(self):
        m = Machine(max_nodes=2)
        with pytest.raises(ValueError, match="allocation"):
            place_component(108, 1).validate(m)

    def test_core_utilisation(self):
        p = place_component(36, 36, 1)
        assert p.core_utilisation(Machine()) == pytest.approx(1.0)

    def test_invalid_placement_args(self):
        with pytest.raises(ValueError):
            place_component(0, 1)


class TestContention:
    def test_memory_slowdown_one_when_sparse(self):
        m = Machine()
        p = place_component(4, 2)  # 2 busy cores/node
        assert memory_bandwidth_slowdown(m, p, 1.0) == 1.0

    def test_memory_slowdown_grows_with_density(self):
        m = Machine()
        sparse = place_component(70, 10)
        dense = place_component(70, 35)
        assert memory_bandwidth_slowdown(m, dense, 1.0) > memory_bandwidth_slowdown(
            m, sparse, 1.0
        )

    def test_compute_bound_immune(self):
        m = Machine()
        dense = place_component(70, 35)
        assert memory_bandwidth_slowdown(m, dense, 0.0) == 1.0

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            memory_bandwidth_slowdown(Machine(), place_component(2, 1), -0.1)

    def test_nic_share_saturates(self):
        m = Machine()
        one = nic_share(m, place_component(2, 1))
        many = nic_share(m, place_component(70, 35))
        assert one < many
        assert many <= m.node.nic_bandwidth_gbps

    def test_fabric_share_splits(self):
        m = Machine()
        assert fabric_share(m, 1) == m.fabric_bandwidth_gbps
        assert fabric_share(m, 2) < m.fabric_bandwidth_gbps / 2 * 1.01
        with pytest.raises(ValueError):
            fabric_share(m, 0)


class TestTopology:
    def test_hop_counts(self):
        topo = FabricTopology(32, nodes_per_switch=16)
        assert topo.hops(0, 0) == 0
        assert topo.hops(0, 1) == 2  # same switch
        assert topo.hops(0, 31) == 4  # across core

    def test_latency_scales_with_hops(self):
        topo = FabricTopology(32)
        assert topo.latency_us(0, 31) > topo.latency_us(0, 1)

    def test_block_distance(self):
        topo = FabricTopology(32, nodes_per_switch=16)
        near = topo.block_distance(range(0, 2), range(2, 4))
        far = topo.block_distance(range(0, 2), range(16, 18))
        assert far > near

    def test_invalid_nodes(self):
        topo = FabricTopology(4)
        with pytest.raises(ValueError):
            topo.hops(0, 4)
        with pytest.raises(ValueError):
            topo.block_distance(range(0), range(1))
