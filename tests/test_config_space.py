"""Unit tests for repro.config.space."""

import numpy as np
import pytest

from repro.config.space import (
    Parameter,
    ParameterSpace,
    choice,
    geometric_range,
    int_range,
    join_spaces,
)


def make_space() -> ParameterSpace:
    return ParameterSpace(
        (
            int_range("procs", 2, 10),
            choice("outputs", (4, 8, 16)),
            int_range("threads", 1, 4),
        )
    )


class TestParameter:
    def test_int_range_values(self):
        p = int_range("x", 2, 5)
        assert p.values == (2, 3, 4, 5)
        assert p.n_options == 4

    def test_int_range_step(self):
        p = int_range("x", 4, 32, step=4)
        assert p.values == (4, 8, 12, 16, 20, 24, 28, 32)

    def test_geometric_range(self):
        p = geometric_range("x", 4, 32)
        assert p.values == (4, 8, 16, 32)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            int_range("x", 5, 4)

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError):
            Parameter("x", (1, 1, 2))

    def test_no_values_rejected(self):
        with pytest.raises(ValueError):
            Parameter("x", ())

    def test_index_of(self):
        p = choice("x", (10, 20, 30))
        assert p.index_of(20) == 1
        with pytest.raises(ValueError):
            p.index_of(99)

    def test_clip_index(self):
        p = choice("x", (10, 20, 30))
        assert p.clip_index(-3) == 0
        assert p.clip_index(7) == 2
        assert p.clip_index(1) == 1


class TestParameterSpace:
    def test_size_is_product(self):
        assert make_space().size() == 9 * 3 * 4

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ParameterSpace((int_range("a", 0, 1), int_range("a", 0, 1)))

    def test_contains(self):
        s = make_space()
        assert s.contains((2, 4, 1))
        assert not s.contains((2, 5, 1))  # 5 not an outputs option
        assert not s.contains((2, 4))  # wrong arity

    def test_validate_raises_with_parameter_name(self):
        s = make_space()
        with pytest.raises(ValueError, match="outputs"):
            s.validate((2, 5, 1))

    def test_dict_round_trip(self):
        s = make_space()
        config = (3, 8, 2)
        assert s.from_dict(s.as_dict(config)) == config

    def test_from_dict_missing_key(self):
        with pytest.raises(ValueError, match="missing"):
            make_space().from_dict({"procs": 2})

    def test_value_accessor(self):
        s = make_space()
        assert s.value((3, 8, 2), "outputs") == 8

    def test_sample_within_space(self):
        s = make_space()
        rng = np.random.default_rng(0)
        for config in s.sample(rng, 50):
            assert s.contains(config)

    def test_sample_unique(self):
        s = make_space()
        rng = np.random.default_rng(0)
        configs = s.sample(rng, 40, unique=True)
        assert len(set(configs)) == 40

    def test_sample_respects_constraint(self):
        s = make_space()
        rng = np.random.default_rng(0)
        configs = s.sample(rng, 30, constraint=lambda c: c[0] % 2 == 0)
        assert all(c[0] % 2 == 0 for c in configs)

    def test_sample_impossible_constraint_raises(self):
        s = make_space()
        rng = np.random.default_rng(0)
        with pytest.raises(RuntimeError, match="rejection sampling"):
            s.sample(rng, 1, constraint=lambda c: False, max_tries_factor=10)

    def test_sample_deterministic_given_seed(self):
        s = make_space()
        a = s.sample(np.random.default_rng(3), 10)
        b = s.sample(np.random.default_rng(3), 10)
        assert a == b

    def test_enumerate_covers_space(self):
        s = ParameterSpace((int_range("a", 0, 1), choice("b", ("x", "y"))))
        assert sorted(s.enumerate()) == [
            (0, "x"), (0, "y"), (1, "x"), (1, "y"),
        ]

    def test_indices_round_trip(self):
        s = make_space()
        config = (7, 16, 3)
        assert s.from_indices(s.to_indices(config)) == config

    def test_normalize_in_unit_cube(self):
        s = make_space()
        rng = np.random.default_rng(0)
        X = s.normalize(s.sample(rng, 20))
        assert X.shape == (20, 3)
        assert X.min() >= 0.0 and X.max() <= 1.0

    def test_normalize_empty(self):
        assert make_space().normalize([]).shape == (0, 3)

    def test_neighbors_one_step(self):
        s = make_space()
        config = (2, 4, 1)  # both at lower bounds except procs=2 (lowest)
        neighbors = s.neighbors(config)
        # lower-bound parameters only move up: 1 (procs up) + 1 (outputs
        # up) + 1 (threads up)
        assert set(neighbors) == {(3, 4, 1), (2, 8, 1), (2, 4, 2)}

    def test_neighbors_interior(self):
        s = make_space()
        assert len(s.neighbors((5, 8, 2))) == 6


class TestJoinSpaces:
    def test_prefixing_and_order(self):
        a = ParameterSpace((int_range("p", 1, 2),))
        b = ParameterSpace((int_range("p", 1, 3),))
        joint = join_spaces([("sim", a), ("viz", b)])
        assert joint.names == ("sim.p", "viz.p")
        assert joint.size() == 2 * 3

    def test_duplicate_labels_rejected(self):
        a = ParameterSpace((int_range("p", 1, 2),))
        with pytest.raises(ValueError):
            join_spaces([("x", a), ("x", a)])
