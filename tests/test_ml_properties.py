"""Property-based tests of the ML substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.boosting import GradientBoostedTrees
from repro.ml.metrics import top_n_indices, top_n_overlap
from repro.ml.tree import RegressionTree


finite_targets = arrays(
    np.float64,
    st.integers(5, 40),
    elements=st.floats(-100, 100, allow_nan=False),
)


@given(y=finite_targets, depth=st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_tree_predictions_bounded_by_targets(y, depth):
    """Leaf values are means, so predictions never leave [min(y), max(y)]."""
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(y.size, 3))
    tree = RegressionTree(max_depth=depth).fit(X, y)
    pred = tree.predict(X)
    assert pred.min() >= y.min() - 1e-8
    assert pred.max() <= y.max() + 1e-8


@given(y=finite_targets)
@settings(max_examples=25, deadline=None)
def test_boosting_training_error_nonincreasing_in_rounds(y):
    """More rounds never increase squared training error (no subsampling)."""
    rng = np.random.default_rng(1)
    X = rng.uniform(size=(y.size, 2))
    errors = []
    for n in (1, 10, 40):
        model = GradientBoostedTrees(
            n_estimators=n, learning_rate=0.3, subsample=1.0, random_state=0
        ).fit(X, y)
        errors.append(float(np.mean((model.predict(X) - y) ** 2)))
    assert errors[0] >= errors[1] - 1e-9
    assert errors[1] >= errors[2] - 1e-9


@given(
    scores=arrays(
        np.float64, st.integers(2, 50),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
    ),
    n=st.integers(1, 10),
)
@settings(max_examples=60, deadline=None)
def test_top_n_overlap_self_is_one(scores, n):
    assert top_n_overlap(scores, scores, n) == 1.0


@given(
    scores=arrays(
        np.float64, st.integers(2, 50),
        elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
    ),
    n=st.integers(1, 10),
)
@settings(max_examples=60, deadline=None)
def test_top_n_indices_are_actually_best(scores, n):
    idx = top_n_indices(scores, n)
    k = min(n, scores.size)
    assert len(idx) == k
    chosen = np.sort(scores[idx])
    rest = np.delete(scores, idx)
    if rest.size:
        assert chosen[-1] <= rest.min() + 1e-12


@given(
    a=st.lists(st.floats(0.1, 1e3, allow_nan=False), min_size=4, max_size=30),
    shift=st.floats(0.1, 10.0),
    scale=st.floats(0.1, 10.0),
)
@settings(max_examples=40, deadline=None)
def test_overlap_invariant_under_monotone_transform(a, shift, scale):
    """Ranking metrics only see order, not magnitude."""
    a = np.asarray(a)
    b = a * scale + shift
    assert top_n_overlap(a, b, 3) == 1.0
