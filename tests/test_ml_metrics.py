"""Unit tests for ML metrics (APE, MdAPE, top-n overlap) and validation."""

import numpy as np
import pytest

from repro.ml.metrics import (
    absolute_percentage_errors,
    mae,
    mdape,
    rmse,
    top_n_indices,
    top_n_overlap,
)
from repro.ml.validation import cross_val_mdape, kfold_indices, train_test_split


class TestApe:
    def test_exact_values(self):
        ape = absolute_percentage_errors(np.array([10.0, 20.0]), np.array([12.0, 15.0]))
        np.testing.assert_allclose(ape, [0.2, 0.25])

    def test_mdape_is_median_percent(self):
        y = np.array([10.0, 10.0, 10.0])
        pred = np.array([11.0, 12.0, 13.0])
        assert mdape(y, pred) == pytest.approx(20.0)

    def test_zero_target_rejected(self):
        with pytest.raises(ValueError):
            absolute_percentage_errors(np.array([0.0]), np.array([1.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            absolute_percentage_errors(np.ones(3), np.ones(2))

    def test_rmse_mae(self):
        y = np.array([0.0, 0.0])
        p = np.array([3.0, 4.0])
        assert rmse(y, p) == pytest.approx(np.sqrt(12.5))
        assert mae(y, p) == pytest.approx(3.5)


class TestTopN:
    def test_top_n_indices_minimize(self):
        scores = np.array([5.0, 1.0, 3.0, 2.0])
        np.testing.assert_array_equal(top_n_indices(scores, 2), [1, 3])

    def test_top_n_indices_maximize(self):
        scores = np.array([5.0, 1.0, 3.0, 2.0])
        np.testing.assert_array_equal(
            top_n_indices(scores, 2, minimize=False), [0, 2]
        )

    def test_stable_tie_break(self):
        scores = np.array([1.0, 1.0, 1.0])
        np.testing.assert_array_equal(top_n_indices(scores, 2), [0, 1])

    def test_overlap_identical(self):
        s = np.arange(10.0)
        assert top_n_overlap(s, s, 3) == 1.0

    def test_overlap_disjoint(self):
        a = np.arange(10.0)
        assert top_n_overlap(a, a[::-1], 3) == 0.0

    def test_overlap_partial(self):
        a = np.array([0.0, 1.0, 2.0, 3.0])
        b = np.array([0.0, 3.0, 1.0, 2.0])
        # top-2 of a = {0,1}; top-2 of b = {0,2} -> overlap 1/2
        assert top_n_overlap(a, b, 2) == 0.5

    def test_n_capped_at_size(self):
        s = np.arange(3.0)
        assert top_n_overlap(s, s, 10) == 1.0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            top_n_indices(np.arange(3.0), 0)


class TestValidation:
    def test_split_partitions(self):
        rng = np.random.default_rng(0)
        train, test = train_test_split(20, 0.25, rng)
        assert len(train) + len(test) == 20
        assert len(set(train) & set(test)) == 0
        assert len(test) == 5

    def test_split_bad_fraction(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            train_test_split(10, 0.0, rng)

    def test_kfold_covers_everything(self):
        rng = np.random.default_rng(0)
        folds = kfold_indices(17, 4, rng)
        assert len(folds) == 4
        all_val = np.concatenate([v for _, v in folds])
        assert sorted(all_val.tolist()) == list(range(17))
        for train, val in folds:
            assert len(set(train) & set(val)) == 0

    def test_kfold_too_few_samples(self):
        with pytest.raises(ValueError):
            kfold_indices(3, 4, np.random.default_rng(0))

    def test_cross_val_mdape_runs(self):
        from repro.ml.boosting import GradientBoostedTrees

        rng = np.random.default_rng(0)
        X = rng.uniform(1, 2, size=(40, 2))
        y = X[:, 0] * 10
        score = cross_val_mdape(
            lambda: GradientBoostedTrees(n_estimators=20, random_state=0),
            X, y, 4, rng,
        )
        assert 0 <= score < 50
