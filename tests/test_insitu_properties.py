"""Property-based tests of the in-situ layer (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.insitu.coupled import run_coupled
from repro.insitu.measurement import measure_workflow
from repro.workflows.catalog import make_lv

_LV = make_lv()


def _feasible_lv_config(draw):
    """Draw a feasible LV configuration directly (no rejection loops)."""
    # Keep each component within 14 nodes so 2 components always fit.
    ppn1 = draw(st.integers(10, 35))
    nodes1 = draw(st.integers(1, 14))
    procs1 = min(1085, ppn1 * nodes1)
    threads1 = draw(st.integers(1, max(1, 36 // ppn1)))
    ppn2 = draw(st.integers(10, 35))
    nodes2 = draw(st.integers(1, 14))
    procs2 = min(1085, ppn2 * nodes2)
    threads2 = draw(st.integers(1, max(1, 36 // ppn2)))
    return (max(procs1, 2), ppn1, min(threads1, 4),
            max(procs2, 2), ppn2, min(threads2, 4))


@st.composite
def feasible_lv(draw):
    return _feasible_lv_config(draw)


@given(config=feasible_lv())
@settings(max_examples=30, deadline=None)
def test_coupled_run_invariants(config):
    """Every feasible coupled run satisfies basic accounting laws."""
    result = run_coupled(_LV, config)
    # All components finished and took positive time.
    assert set(result.component_seconds) == set(_LV.labels)
    assert all(v > 0 for v in result.component_seconds.values())
    # Execution time is the longest component.
    assert result.execution_seconds == max(result.component_seconds.values())
    # Busy time never exceeds wall-clock (stalls are non-negative).
    for label in _LV.labels:
        assert result.busy_seconds[label] <= result.component_seconds[label] + 1e-6
    # Node footprint matches the constraint's accounting.
    assert result.nodes == _LV.constraint.total_nodes(config)
    assert result.nodes <= _LV.machine.max_nodes


@given(config=feasible_lv(), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_measurement_noise_bounded_and_consistent(config, seed):
    """Noisy measurements stay consistent with their own definition."""
    m = measure_workflow(_LV, config, noise_sigma=0.05, noise_seed=seed)
    clean = measure_workflow(_LV, config, noise_sigma=0)
    # Log-normal noise with sigma 5%: within ±6 sigma of truth.
    ratio = m.execution_seconds / clean.execution_seconds
    assert 0.7 < ratio < 1.4
    # Computer time definition holds under noise.
    expected = m.execution_seconds * m.nodes * _LV.machine.node.cores / 3600.0
    assert abs(m.computer_core_hours - expected) < 1e-9
    # Components scale with the same factor (one factor per run).
    assert m.execution_seconds == max(m.component_seconds.values())


@given(config=feasible_lv())
@settings(max_examples=15, deadline=None)
def test_solo_runs_positive_and_monotone_in_steps(config):
    for label in _LV.labels:
        comp = _LV.component_config(label, config)
        app = _LV.app(label)
        short = app.solo_run(_LV.machine, comp, n_steps=5)
        long = app.solo_run(_LV.machine, comp, n_steps=10)
        assert 0 < short.execution_seconds < long.execution_seconds
        assert short.nodes == long.nodes
