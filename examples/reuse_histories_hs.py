"""HS with historical component measurements (paper §7.5).

Heat Transfer streams a 2-D field into Stage Write.  Components are
often reused across workflows, so their solo measurements may already
exist; CEAL then trains its component models for free and spends the
whole budget on coupled runs.  This example quantifies that benefit and
the practicality metric (least number of uses to recoup tuning cost).

Run:  python examples/reuse_histories_hs.py
"""

import numpy as np

from repro.core import AutoTuner, Ceal, CealSettings
from repro.core.metrics import least_number_of_uses
from repro.insitu import measure_workflow
from repro.workflows import expert_config, make_hs


def tune(use_history: bool, seeds=range(3)):
    workflow = make_hs()
    gaps, costs, values = [], [], []
    for seed in seeds:
        outcome = AutoTuner(
            workflow,
            objective="computer_time",
            budget=50,
            pool_size=1000,
            algorithm=Ceal(CealSettings(use_history=use_history)),
            use_history=use_history,
            seed=seed,
        ).tune()
        gaps.append(outcome.gap_to_pool_best)
        costs.append(outcome.cost)
        values.append(outcome.best_value)
    return float(np.mean(gaps)), float(np.mean(costs)), float(np.mean(values))


def main() -> None:
    workflow = make_hs()
    print("workflow: HS (heat transfer -> stage write), objective: "
          "computer time, budget m = 50 runs\n")

    without = tune(use_history=False)
    with_hist = tune(use_history=True)

    print("                      gap to optimum   tuning cost (core-h)")
    print(f"CEAL w/o histories        {without[0]:.3f}x        {without[1]:8.1f}")
    print(f"CEAL w/  histories        {with_hist[0]:.3f}x        {with_hist[1]:8.1f}")
    improvement = (without[0] - with_hist[0]) / without[0]
    print(f"\nhistories improve the tuned configuration by {improvement:.1%} "
          "and shift the whole budget to coupled runs.")

    expert = measure_workflow(
        workflow, expert_config("HS", "computer_time"), noise_sigma=0
    ).computer_core_hours
    uses = least_number_of_uses(with_hist[1], with_hist[2], expert)
    print(f"\nexpert recommendation      : {expert:.2f} core-hours/run")
    print(f"tuned configuration        : {with_hist[2]:.2f} core-hours/run")
    if uses != float("inf"):
        print(f"tuning cost is recouped after {uses:.0f} production runs "
              "(paper §7.2.3 practicality metric)")
    else:
        print("tuning did not beat the expert on these seeds")


if __name__ == "__main__":
    main()
