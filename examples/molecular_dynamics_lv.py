"""LV deep dive: coupled execution anatomy and algorithm comparison.

The scenario from the paper's §7.1: LAMMPS simulates 16 000 atoms and
streams positions/velocities into Voro++ each step.  This example

1. dissects one coupled run (per-component wall-clock, synchronisation
   stalls, node footprint),
2. shows the fidelity gap between the analytic max-of-solo-times bound
   and the coupled measurement — the reason CEAL's low-fidelity model
   is *low* fidelity, and
3. compares RS, AL and CEAL under the same 50-run budget.

Run:  python examples/molecular_dynamics_lv.py
"""

import numpy as np

from repro.core import AutoTuner, Ceal, CealSettings
from repro.core.algorithms import ActiveLearning, RandomSampling
from repro.insitu import run_coupled
from repro.workflows import expert_config, make_lv


def dissect_coupled_run() -> None:
    workflow = make_lv()
    config = expert_config("LV", "execution_time")
    result = run_coupled(workflow, config)

    print("=== one coupled run, expert configuration ===")
    print(f"configuration      : {config}")
    print(f"streamed steps     : {result.steps}")
    print(f"node footprint     : {result.nodes} nodes")
    print(f"execution time     : {result.execution_seconds:.2f} s")
    for label in workflow.labels:
        wall = result.component_seconds[label]
        stall = result.stall_seconds(label)
        print(f"  {label:8s} wall {wall:7.2f} s   "
              f"stalled {stall:6.2f} s ({stall / wall:5.1%})")

    solo = {
        label: workflow.solo_run(
            label, workflow.component_config(label, config)
        ).execution_seconds
        for label in workflow.labels
    }
    acm_bound = max(solo.values())
    print(f"solo times         : " +
          ", ".join(f"{k}={v:.2f}s" for k, v in solo.items()))
    print(f"max-of-solo (ACM)  : {acm_bound:.2f} s -> coupled is "
          f"{result.execution_seconds / acm_bound:.3f}x the analytic bound")


def compare_algorithms() -> None:
    workflow = make_lv()
    print("\n=== RS vs AL vs CEAL, computer time, 50-run budget ===")
    algorithms = (
        ("RS  ", RandomSampling()),
        ("AL  ", ActiveLearning()),
        ("CEAL", Ceal(CealSettings(use_history=True))),
    )
    for name, algorithm in algorithms:
        gaps = []
        for seed in range(3):
            outcome = AutoTuner(
                workflow,
                objective="computer_time",
                budget=50,
                pool_size=1000,
                algorithm=algorithm,
                use_history=True,
                seed=seed,
            ).tune()
            gaps.append(outcome.gap_to_pool_best)
        print(f"  {name}  mean gap to pool optimum: {np.mean(gaps):.3f}x "
              f"(3 seeds: {', '.join(f'{g:.3f}' for g in gaps)})")


if __name__ == "__main__":
    dissect_coupled_run()
    compare_algorithms()
