"""Build and tune a *custom* in-situ workflow from the public API.

Downstream users will not tune LV/HS/GP — they will couple their own
applications.  This example defines a new component application (a
spectral analyzer with its own parameter space and scaling behaviour),
couples it downstream of the Gray-Scott simulator, and auto-tunes the
resulting two-component workflow with CEAL.

Run:  python examples/custom_workflow.py
"""

from dataclasses import dataclass, field

from repro.apps import GrayScott
from repro.apps.base import ComponentApp, StepProfile
from repro.apps.scaling import amdahl_compute_seconds, collective_seconds
from repro.cluster.allocation import Placement, place_component
from repro.cluster.machine import Machine
from repro.config import Configuration, ParameterSpace, int_range
from repro.core import AutoTuner
from repro.insitu import Coupling, WorkflowDefinition


@dataclass
class SpectralAnalyzer(ComponentApp):
    """A made-up analysis app: 3-D FFT + band-power reduction per step.

    Work scales as n·log n in the received field; an all-to-all transpose
    makes dense single-node placements attractive until the memory wall.
    """

    gflop_per_gb: float = 120.0
    serial_fraction: float = 0.02
    name: str = "spectral"
    nominal_input_bytes: float = 256.0**3 * 8.0
    _space: ParameterSpace = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._space = ParameterSpace(
            (int_range("procs", 2, 256), int_range("ppn", 1, 35))
        )

    @property
    def space(self) -> ParameterSpace:
        return self._space

    def placement(self, config: Configuration) -> Placement:
        procs, ppn = config
        return place_component(procs, ppn, 1)

    def step_profile(
        self, machine: Machine, config: Configuration, input_bytes: float
    ) -> StepProfile:
        placement = self.placement(config)
        bytes_in = input_bytes if input_bytes > 0 else self.nominal_input_bytes
        compute = amdahl_compute_seconds(
            machine,
            placement,
            self.gflop_per_gb * bytes_in / 1e9,
            self.serial_fraction,
            thread_efficiency=0.0,
            bytes_per_flop=0.7,
            imbalance_per_doubling=0.02,
        )
        # FFT transpose: a heavy all-to-all, several rounds per step.
        transpose = 8.0 * collective_seconds(
            machine, placement.procs, per_stage_us=60.0
        )
        return StepProfile(
            compute_seconds=compute + transpose,
            output_bytes=0.0,
            write_bytes=1e6,  # band-power summary
        )


def main() -> None:
    workflow = WorkflowDefinition(
        name="GS-Spectral",
        components=(
            ("gray_scott", GrayScott()),
            ("spectral", SpectralAnalyzer()),
        ),
        couplings=(Coupling("gray_scott", "spectral"),),
        n_steps=20,
    )
    print(f"workflow           : {workflow.name}")
    print(f"joint space        : {workflow.space.size():.2e} configurations "
          f"({workflow.space.dimension} parameters)")

    outcome = AutoTuner(
        workflow,
        objective="execution_time",
        budget=40,
        pool_size=800,
        use_history=True,
        seed=1,
    ).tune()

    named = workflow.space.as_dict(outcome.best_config)
    print(f"tuned configuration:")
    for key, value in named.items():
        print(f"  {key:22s} = {value}")
    print(f"tuned execution    : {outcome.best_value:.2f} s "
          f"(pool optimum {outcome.pool_best_value:.2f} s, "
          f"gap {outcome.gap_to_pool_best:.3f}x)")
    print(f"runs spent         : {outcome.runs_used}")


if __name__ == "__main__":
    main()
