"""Load-generate against the tuning daemon and print a BENCH report.

Drives many concurrent tuning sessions against a ``repro serve``
daemon through the stdlib client, then prints the load report — the
same schema as the committed ``BENCH_serve.json`` (per-endpoint
latency percentiles, throughput, and ``floor``/``speedup`` gates that
``repro telemetry diff --floors`` understands).

Against a daemon you started yourself::

    python -m repro serve --state-dir .serve --port 8765 &
    python examples/serve_loadgen.py --port 8765 --sessions 50

Self-contained (boots an in-process daemon, runs, tears down)::

    python examples/serve_loadgen.py --inline --sessions 120 \
        --out BENCH_serve.json

Knobs: ``--sessions`` concurrent sessions, ``--rate`` a global
requests/second cap (0 = unlimited), ``--duration`` a wall-clock cap
in seconds (0 = run to completion).
"""

import argparse
import json
import sys
import tempfile


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="load-generate against a repro serve daemon"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument(
        "--inline", action="store_true",
        help="boot an in-process daemon instead of targeting --port")
    parser.add_argument(
        "--sessions", type=int, default=24,
        help="concurrent sessions to drive (default: 24)")
    parser.add_argument(
        "--threads", type=int, default=8,
        help="client worker threads (default: 8)")
    parser.add_argument(
        "--rate", type=float, default=0.0,
        help="global request rate cap in req/s (default: unlimited)")
    parser.add_argument(
        "--duration", type=float, default=0.0,
        help="stop issuing requests after SEC seconds (default: run "
        "every session to completion)")
    parser.add_argument(
        "--budget", type=int, default=6,
        help="per-session measurement budget (default: 6)")
    parser.add_argument(
        "--algorithms", default="rs,lowfid,ceal",
        help="comma-separated algorithms cycled across sessions "
        "(default: rs,lowfid,ceal — the model-fitting strategies "
        "exercise the rehydration caches)")
    parser.add_argument(
        "--max-active", type=int, default=16,
        help="inline daemon resident-session budget; smaller than "
        "--sessions exercises eviction churn (default: 16)")
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the JSON report to PATH")
    args = parser.parse_args(argv)

    from repro.serve.loadgen import apply_floors, run_load

    algorithms = tuple(a for a in args.algorithms.split(",") if a)
    kwargs = dict(
        sessions=args.sessions,
        threads=args.threads,
        rate=args.rate,
        duration=args.duration,
        spec={"budget": args.budget},
        algorithms=algorithms,
    )
    if args.inline:
        from repro.serve.http import BackgroundServer
        from repro.serve.sessions import SessionManager

        with tempfile.TemporaryDirectory(prefix="repro-serve-") as state:
            manager = SessionManager(state, max_active=args.max_active)
            with BackgroundServer(manager, host=args.host) as server:
                report = run_load(
                    host=args.host, port=server.port, **kwargs
                )
    else:
        report = run_load(host=args.host, port=args.port, **kwargs)

    report = apply_floors(
        report,
        required_rps=4.0,
        ask_p95_budget_ms=3_000.0,
        tell_p95_budget_ms=1_500.0,
        create_p95_budget_ms=1_500.0,
        rehydrate_p95_budget_ms=750.0,
    )
    text = json.dumps(report, indent=1, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    ok = report["errors"] == 0 and (
        report["sessions_completed"] == report["sessions_created"]
        or args.duration > 0
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
