"""Quickstart: auto-tune an in-situ workflow with CEAL in ~20 lines.

Tunes the LV workflow (LAMMPS molecular dynamics streaming into the
Voro++ tessellator) for computer time under a budget of 50 workflow
runs, then compares the tuned configuration against the paper's
expert recommendation.

Run:  python examples/quickstart.py
"""

from repro.core import AutoTuner
from repro.insitu import measure_workflow
from repro.workflows import expert_config, make_lv


def main() -> None:
    workflow = make_lv()

    outcome = AutoTuner(
        workflow,
        objective="computer_time",
        budget=50,          # total workflow-run budget m
        pool_size=1000,     # candidate pool (paper: 2000)
        use_history=True,   # reuse historical solo component measurements
        seed=0,
    ).tune()

    expert = measure_workflow(
        workflow, expert_config("LV", "computer_time"), noise_sigma=0
    )

    print(f"workflow           : {workflow.name} "
          f"({' -> '.join(workflow.labels)})")
    print(f"configuration space: {workflow.space.size():.2e} configurations")
    print(f"budget             : {outcome.runs_used} workflow runs")
    print(f"tuned configuration: {outcome.best_config}")
    print(f"tuned computer time: {outcome.best_value:.2f} core-hours")
    print(f"pool optimum       : {outcome.pool_best_value:.2f} core-hours "
          f"(gap {outcome.gap_to_pool_best:.3f}x)")
    print(f"expert recommends  : {expert.computer_core_hours:.2f} core-hours")
    saved = expert.computer_core_hours - outcome.best_value
    print(f"saved per run      : {saved:.2f} core-hours "
          f"({saved / expert.computer_core_hours:.1%})")
    print(f"tuning cost        : {outcome.cost:.1f} core-hours")
    if saved > 0:
        print(f"cost recouped after: {outcome.cost / saved:.0f} runs")


if __name__ == "__main__":
    main()
