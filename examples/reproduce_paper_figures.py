"""Regenerate paper figures/tables from Python (or use the CLI).

Equivalent CLI:

    python -m repro reproduce --target table2
    python -m repro reproduce --target fig05 --repeats 10 --pool 1000 --jobs auto

This script regenerates Table 2 and Figure 4 at small scale, then runs a
small repeated-trial comparison with the parallel execution engine; swap
in any driver from ``repro.experiments`` (fig04..fig13, table1, table2).

Repeated trials fan out over ``--jobs`` worker processes (or the
``REPRO_JOBS`` environment variable; ``auto`` = one per CPU).  Results
are bit-identical to serial execution — parallelism only changes
wall-clock time.  Set ``REPRO_CACHE_DIR`` to some directory to reuse the
measured pools across invocations.

Run:  python examples/reproduce_paper_figures.py --jobs auto
"""

import argparse
import time

from repro.experiments import (
    default_algorithms,
    fig04_lowfid_recall,
    run_trials,
    summarize,
    table2_best_vs_expert,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs",
        default=None,
        help="worker processes for repeated trials "
        "('auto' = one per CPU; default REPRO_JOBS or serial)",
    )
    parser.add_argument("--repeats", type=int, default=8)
    parser.add_argument("--pool", type=int, default=300)
    args = parser.parse_args()

    table2 = table2_best_vs_expert(pool_size=2000)
    print(table2.to_text())
    print()

    fig4 = fig04_lowfid_recall(pool_size=500, max_n=10)
    print(fig4.to_text())
    print()

    started = time.perf_counter()
    trials = run_trials(
        "LV",
        "computer_time",
        default_algorithms(),
        budget=25,
        repeats=args.repeats,
        pool_size=args.pool,
        jobs=args.jobs,
    )
    elapsed = time.perf_counter() - started
    print(f"Fig. 5-style cell (LV computer time, m=25, {args.repeats} repeats)")
    for name, stats in summarize(trials).items():
        print(
            f"  {name:6s} normalized={stats['normalized']:.3f}  "
            f"mean trial wall={stats['wall_seconds']:.2f}s"
        )
    busy = sum(t.wall_seconds for t in trials)
    print(f"  total wall {elapsed:.1f}s for {busy:.1f}s of trial work "
          f"(jobs={args.jobs or 'serial'})")
    print()
    print("For the full evaluation: pytest benchmarks/ --benchmark-only -m slow")
    print("(set REPRO_BENCH_REPEATS / REPRO_BENCH_POOL / REPRO_BENCH_JOBS "
          "for paper-scale runs)")


if __name__ == "__main__":
    main()
