"""Regenerate paper figures/tables from Python (or use the CLI).

Equivalent CLI:

    python -m repro reproduce --target table2
    python -m repro reproduce --target fig05 --repeats 10 --pool 1000

This script regenerates Table 2 and Figure 4 at small scale and prints
them; swap in any driver from ``repro.experiments`` (fig04..fig13,
table1, table2).

Run:  python examples/reproduce_paper_figures.py
"""

from repro.experiments import fig04_lowfid_recall, table2_best_vs_expert


def main() -> None:
    table2 = table2_best_vs_expert(pool_size=2000)
    print(table2.to_text())
    print()

    fig4 = fig04_lowfid_recall(pool_size=500, max_n=10)
    print(fig4.to_text())
    print()
    print("For the full evaluation: pytest benchmarks/ --benchmark-only")
    print("(set REPRO_BENCH_REPEATS / REPRO_BENCH_POOL for paper-scale runs)")


if __name__ == "__main__":
    main()
